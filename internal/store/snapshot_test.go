package store

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"smartsock/internal/status"
)

func TestSysViewSortedAndShared(t *testing.T) {
	db := New()
	for _, h := range []string{"carol", "alice", "bob"} {
		db.PutSys(host(h, 0.1))
	}
	v1 := db.SysView()
	if len(v1.Records) != 3 {
		t.Fatalf("%d records, want 3", len(v1.Records))
	}
	for i, want := range []string{"alice", "bob", "carol"} {
		if got := v1.Records[i].Status.Host; got != want {
			t.Errorf("record %d is %q, want %q", i, got, want)
		}
	}
	// No mutation between reads: same snapshot pointer, no rebuild.
	if v2 := db.SysView(); v2 != v1 {
		t.Error("second SysView rebuilt the snapshot without a mutation")
	}
}

func TestSysViewEpochAdvancesOnMutation(t *testing.T) {
	db := New()
	db.PutSys(host("alice", 0.1))
	v1 := db.SysView()

	db.PutSys(host("bob", 0.2))
	v2 := db.SysView()
	if v2 == v1 || v2.Epoch <= v1.Epoch {
		t.Fatalf("PutSys did not advance the snapshot: epoch %d → %d", v1.Epoch, v2.Epoch)
	}
	// The old snapshot is immutable: still one record, still alice.
	if len(v1.Records) != 1 || v1.Records[0].Status.Host != "alice" {
		t.Errorf("old snapshot mutated: %+v", v1.Records)
	}
	if len(v2.Records) != 2 {
		t.Errorf("new snapshot has %d records, want 2", len(v2.Records))
	}
	if db.SysEpoch() != v2.Epoch {
		t.Errorf("SysEpoch = %d, snapshot epoch = %d", db.SysEpoch(), v2.Epoch)
	}
}

func TestSysViewInvalidatedByExpireAndLoad(t *testing.T) {
	clock := newFakeClock()
	db := NewWithClock(clock.Now)
	db.PutSys(host("alice", 0.1))
	clock.Advance(10 * time.Second)
	db.PutSys(host("bob", 0.2))
	v1 := db.SysView()

	// Expiry that removes a record must invalidate.
	if gone := db.ExpireSys(5 * time.Second); len(gone) != 1 || gone[0] != "alice" {
		t.Fatalf("ExpireSys removed %v, want [alice]", gone)
	}
	v2 := db.SysView()
	if v2.Epoch <= v1.Epoch {
		t.Error("ExpireSys that removed a record did not bump the epoch")
	}
	if len(v2.Records) != 1 || v2.Records[0].Status.Host != "bob" {
		t.Errorf("post-expiry snapshot: %+v", v2.Records)
	}

	// Expiry that removes nothing must not invalidate: the wizard's
	// hot path keeps its cached snapshot across no-op sweeps.
	if gone := db.ExpireSys(5 * time.Second); len(gone) != 0 {
		t.Fatalf("second ExpireSys removed %v, want none", gone)
	}
	if v3 := db.SysView(); v3 != v2 {
		t.Error("no-op ExpireSys invalidated the snapshot")
	}

	// Load with a sys section replaces the table and must invalidate.
	db.Load([]status.ServerStatus{host("carol", 0.3)}, nil, nil)
	v4 := db.SysView()
	if v4.Epoch <= v2.Epoch {
		t.Error("Load did not bump the epoch")
	}
	if len(v4.Records) != 1 || v4.Records[0].Status.Host != "carol" {
		t.Errorf("post-load snapshot: %+v", v4.Records)
	}

	// Load with nil sys leaves the section (and its snapshot) alone.
	db.Load(nil, nil, nil)
	if db.SysView() != v4 {
		t.Error("Load(nil sys) invalidated the snapshot")
	}
}

func TestFreshSysMatchesSnapshotCutoff(t *testing.T) {
	clock := newFakeClock()
	db := NewWithClock(clock.Now)
	db.PutSys(host("stale", 0.1))
	clock.Advance(30 * time.Second)
	db.PutSys(host("fresh", 0.2))

	got := db.FreshSys(10 * time.Second)
	if len(got) != 1 || got[0].Status.Host != "fresh" {
		t.Fatalf("FreshSys = %+v, want just fresh", got)
	}
	// Sys and FreshSys both derive from one snapshot, so the counts a
	// selector reports can never disagree.
	if total := len(db.Sys()); total != 2 {
		t.Fatalf("Sys has %d records, want 2", total)
	}
}

func TestSysViewConcurrentReadersAndWriters(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				db.PutSys(host(fmt.Sprintf("host%d-%d", g, i%8), float64(i)))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for i := 0; i < 2000; i++ {
				v := db.SysView()
				if v.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", v.Epoch, lastEpoch)
					return
				}
				lastEpoch = v.Epoch
				for j := 1; j < len(v.Records); j++ {
					if v.Records[j-1].Status.Host >= v.Records[j].Status.Host {
						t.Error("snapshot records out of order")
						return
					}
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}
