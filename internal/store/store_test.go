package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"smartsock/internal/status"
)

// fakeClock is a settable clock for deterministic expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2004, 6, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func host(name string, load float64) status.ServerStatus {
	return status.ServerStatus{Host: name, Load1: load, CPUIdle: 0.9}
}

func TestPutSysUpsert(t *testing.T) {
	db := New()
	db.PutSys(host("a", 0.1))
	db.PutSys(host("b", 0.2))
	db.PutSys(host("a", 0.9)) // update, not insert
	if db.SysLen() != 2 {
		t.Fatalf("SysLen = %d, want 2", db.SysLen())
	}
	r, ok := db.GetSys("a")
	if !ok || r.Status.Load1 != 0.9 {
		t.Errorf("GetSys(a) = %+v (%v), want updated load 0.9", r, ok)
	}
}

func TestSysSorted(t *testing.T) {
	db := New()
	for _, h := range []string{"zeta", "alpha", "mid"} {
		db.PutSys(host(h, 1))
	}
	recs := db.Sys()
	var names []string
	for _, r := range recs {
		names = append(names, r.Status.Host)
	}
	if !reflect.DeepEqual(names, []string{"alpha", "mid", "zeta"}) {
		t.Errorf("Sys order = %v", names)
	}
}

func TestExpireSysAfterMissedIntervals(t *testing.T) {
	// §4.1: "A server failure is detected, if any probe fails to
	// report after 3 consecutive intervals."
	clk := newFakeClock()
	db := NewWithClock(clk.Now)
	interval := 10 * time.Second
	db.PutSys(host("fresh", 1))
	clk.Advance(2 * interval)
	db.PutSys(host("fresh", 2)) // fresh keeps reporting
	db.PutSys(host("dying", 1))
	clk.Advance(3*interval + time.Second)
	db.PutSys(host("fresh", 3))

	expired := db.ExpireSys(3 * interval)
	if !reflect.DeepEqual(expired, []string{"dying"}) {
		t.Errorf("expired = %v, want [dying]", expired)
	}
	if _, ok := db.GetSys("dying"); ok {
		t.Error("dying still present after expiry")
	}
	if _, ok := db.GetSys("fresh"); !ok {
		t.Error("fresh was wrongly expired")
	}
}

func TestServerRejoinsAfterExpiry(t *testing.T) {
	clk := newFakeClock()
	db := NewWithClock(clk.Now)
	db.PutSys(host("roamer", 1))
	clk.Advance(time.Hour)
	db.ExpireSys(30 * time.Second)
	if db.SysLen() != 0 {
		t.Fatal("record survived expiry")
	}
	db.PutSys(host("roamer", 2)) // probe resumes (§3.2.2)
	if _, ok := db.GetSys("roamer"); !ok {
		t.Error("server could not rejoin after expiry")
	}
}

func TestNetRecords(t *testing.T) {
	db := New()
	db.PutNet(status.NetMetric{From: "m1", To: "m2", Delay: 5 * time.Millisecond, Bandwidth: 95e6})
	db.PutNet(status.NetMetric{From: "m2", To: "m1", Delay: 6 * time.Millisecond, Bandwidth: 90e6})
	db.PutNet(status.NetMetric{From: "m1", To: "m2", Delay: 7 * time.Millisecond, Bandwidth: 80e6})
	if got := len(db.Net()); got != 2 {
		t.Fatalf("Net len = %d, want 2 (directed pairs upsert)", got)
	}
	r, ok := db.GetNet("m1", "m2")
	if !ok || r.Metric.Delay != 7*time.Millisecond {
		t.Errorf("GetNet(m1,m2) = %+v (%v)", r, ok)
	}
	if _, ok := db.GetNet("m2", "m3"); ok {
		t.Error("GetNet returned a record for an unknown pair")
	}
}

func TestNetKeyDirectional(t *testing.T) {
	db := New()
	db.PutNet(status.NetMetric{From: "a", To: "bc"})
	db.PutNet(status.NetMetric{From: "ab", To: "c"})
	if got := len(db.Net()); got != 2 {
		t.Errorf("ambiguous net keys collided: len = %d, want 2", got)
	}
}

func TestExpireNet(t *testing.T) {
	clk := newFakeClock()
	db := NewWithClock(clk.Now)
	db.PutNet(status.NetMetric{From: "m1", To: "m2"})
	clk.Advance(time.Minute)
	db.PutNet(status.NetMetric{From: "m1", To: "m3"})
	if n := db.ExpireNet(30 * time.Second); n != 1 {
		t.Errorf("ExpireNet = %d, want 1", n)
	}
}

func TestSecRecords(t *testing.T) {
	db := New()
	db.PutSec(status.SecLevel{Host: "sagit", Level: 5})
	db.PutSec(status.SecLevel{Host: "sagit", Level: 3})
	r, ok := db.GetSec("sagit")
	if !ok || r.Level.Level != 3 {
		t.Errorf("GetSec = %+v (%v), want level 3", r, ok)
	}
}

func TestSnapshotLoadMirrors(t *testing.T) {
	// §3.5.2: the receiver maintains "identical shared memory contents
	// as what is in the transmitter".
	src := New()
	for i := 0; i < 5; i++ {
		src.PutSys(host(fmt.Sprintf("h%d", i), float64(i)))
	}
	src.PutNet(status.NetMetric{From: "m1", To: "m2", Delay: time.Millisecond, Bandwidth: 1e6})
	src.PutSec(status.SecLevel{Host: "h0", Level: 2})

	sys, net, sec := src.Snapshot()
	dst := New()
	dst.Load(sys, net, sec)

	s2, n2, c2 := dst.Snapshot()
	if !reflect.DeepEqual(sys, s2) || !reflect.DeepEqual(net, n2) || !reflect.DeepEqual(sec, c2) {
		t.Error("receiver-side database does not mirror transmitter contents")
	}
}

func TestLoadNilLeavesSectionUntouched(t *testing.T) {
	db := New()
	db.PutSys(host("keep", 1))
	db.Load(nil, []status.NetMetric{{From: "a", To: "b"}}, nil)
	if _, ok := db.GetSys("keep"); !ok {
		t.Error("Load(nil,...) wiped the sys section")
	}
	if len(db.Net()) != 1 {
		t.Error("Load did not replace the net section")
	}
}

func TestLoadReplacesStaleEntries(t *testing.T) {
	db := New()
	db.PutSys(host("old", 1))
	db.Load([]status.ServerStatus{host("new", 2)}, nil, nil)
	if _, ok := db.GetSys("old"); ok {
		t.Error("Load kept an entry absent from the incoming batch")
	}
}

func TestConcurrentAccess(t *testing.T) {
	// The shared-memory analogue must support concurrent monitor
	// writes and wizard reads (§3.2.2 / Table 4.3). Run with -race.
	db := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.PutSys(host(fmt.Sprintf("h%d", i%7), float64(i)))
				db.PutNet(status.NetMetric{From: "m1", To: fmt.Sprintf("m%d", w)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.Sys()
				db.Snapshot()
				db.ExpireSys(time.Hour)
			}
		}()
	}
	wg.Wait()
	if db.SysLen() != 7 {
		t.Errorf("SysLen = %d, want 7", db.SysLen())
	}
}

func TestPropertySnapshotLoadIdempotent(t *testing.T) {
	// Snapshot∘Load is the transmitter/receiver contract: applying a
	// snapshot to any database yields a database whose own snapshot is
	// identical — for arbitrary record populations.
	prop := func(seed int64, nSys, nNet, nSec uint8) bool {
		r := rand.New(rand.NewSource(seed))
		src := New()
		for i := 0; i < int(nSys%20); i++ {
			src.PutSys(status.ServerStatus{
				Host:  fmt.Sprintf("h%02d", r.Intn(12)),
				Load1: float64(r.Intn(100)) / 10,
			})
		}
		for i := 0; i < int(nNet%10); i++ {
			src.PutNet(status.NetMetric{
				From: fmt.Sprintf("m%d", r.Intn(3)), To: fmt.Sprintf("g%d", r.Intn(4)),
				Delay: time.Duration(r.Intn(1000)) * time.Microsecond,
			})
		}
		for i := 0; i < int(nSec%10); i++ {
			src.PutSec(status.SecLevel{Host: fmt.Sprintf("h%02d", r.Intn(12)), Level: r.Intn(9)})
		}
		s1, n1, c1 := src.Snapshot()
		dst := New()
		dst.Load(s1, n1, c1)
		s2, n2, c2 := dst.Snapshot()
		return reflect.DeepEqual(s1, s2) && reflect.DeepEqual(n1, n2) && reflect.DeepEqual(c1, c2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExpiryNeverRemovesFresh(t *testing.T) {
	prop := func(nRaw uint8, ageRaw uint16) bool {
		clk := newFakeClock()
		db := NewWithClock(clk.Now)
		n := int(nRaw%20) + 1
		maxAge := time.Duration(ageRaw%1000+1) * time.Millisecond
		for i := 0; i < n; i++ {
			db.PutSys(status.ServerStatus{Host: fmt.Sprintf("h%d", i)})
		}
		// Advance to just inside the horizon: nothing may expire.
		clk.Advance(maxAge - time.Millisecond)
		if got := db.ExpireSys(maxAge); len(got) != 0 {
			return false
		}
		// Advance past it: everything must expire.
		clk.Advance(2 * time.Millisecond)
		return len(db.ExpireSys(maxAge)) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
