// Package store holds the three status databases — sysdb, netdb and
// secdb (Fig 3.10) — that monitors write and the transmitter, receiver
// and wizard read. In the thesis these live in System V shared memory
// guarded by semaphores (Table 4.3); here the components are
// goroutines sharing one process, so a mutex-guarded map provides the
// same concurrent read/update semantics.
//
// Every record carries the timestamp of its last update. The system
// monitor expires records whose probe has missed several report
// intervals (§3.2.2), which is how servers leave the pool and how
// failures are detected.
//
// For the delta transport the database additionally keeps a single
// monotonically increasing version counter. Every mutation — a
// content change, a same-content refresh, an expiry — advances it and
// stamps the affected record (or its tombstone), so ChangedSince can
// answer "what moved after version V" and the transmitter ships only
// that instead of re-marshalling the whole database each tick.
package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"smartsock/internal/status"
)

// Clock abstracts time so tests can drive expiry deterministically.
type Clock func() time.Time

// SysRecord is a server status report plus its arrival time.
type SysRecord struct {
	Status    status.ServerStatus
	UpdatedAt time.Time
	// Ver is the database version of the record's last content
	// change; RefVer of its last report (a refresh re-stamps RefVer
	// and UpdatedAt without touching Ver).
	Ver, RefVer uint64
}

// NetRecord is a network metric plus its measurement time.
type NetRecord struct {
	Metric      status.NetMetric
	UpdatedAt   time.Time
	Ver, RefVer uint64
}

// SecRecord is a security level plus its report time.
type SecRecord struct {
	Level       status.SecLevel
	UpdatedAt   time.Time
	Ver, RefVer uint64
}

// SysSnapshot is an immutable, epoch-versioned view of the server
// status table. Writers publish a new snapshot when the table
// mutates; readers grab the current one with a single atomic load, so
// the selection hot path evaluates candidates without copying the
// table or holding any lock. Records is sorted by host and shared:
// callers must treat it as read-only.
type SysSnapshot struct {
	// Epoch increments on every content mutation of the sys table:
	// two snapshots with the same epoch hold the same hosts with the
	// same status values. A same-content refresh re-stamps UpdatedAt
	// without advancing the epoch, so selection memoized against an
	// epoch stays valid across idle probe ticks.
	Epoch   uint64
	Records []SysRecord
}

// maxTombstones bounds the per-table tombstone maps. When a table
// exceeds it the tombstones are dropped wholesale and the deletion
// floor advances, forcing mirrors behind the floor onto a full
// resync; a sequence of 4096 expiries without one intervening resync
// is already a pathological fleet.
const maxTombstones = 4096

// changeLogCap bounds the in-memory changelog ring. ChangedSince
// serves a delta by walking only the ring entries newer than the
// caller's base instead of scanning every record, so its cost tracks
// the change rate, not the fleet size; a caller whose base has been
// evicted from the ring falls back to the historical full scan.
const changeLogCap = 4096

// Changelog table tags.
const (
	logSys = iota
	logNet
	logSec
)

// changeEntry records one version-stamping mutation. The key strings
// alias record-owned (or tombstone-key) strings, so appending an
// entry never allocates on the steady-state refresh path.
type changeEntry struct {
	table uint8
	ver   uint64
	key   string // sys/sec host, or net From
	key2  string // net To
}

// DB is the full status database shared by the monitors, the
// transmitter/receiver pair and the wizard.
type DB struct {
	mu    sync.RWMutex
	clock Clock
	sys   map[string]*SysRecord // keyed by server host
	net   map[string]*NetRecord // keyed by From+"\x00"+To
	sec   map[string]*SecRecord // keyed by host

	// ver is the database-wide mutation counter; guarded by mu.
	ver uint64
	// Tombstones map deleted keys to the version of the deletion, so
	// expiries propagate through deltas. Guarded by mu.
	sysTomb map[string]uint64
	netTomb map[status.NetKey]uint64
	secTomb map[string]uint64
	// tombFloor is the highest version whose tombstones may have been
	// discarded (pruning, or a whole-table Load). ChangedSince refuses
	// bases below it: such a mirror could miss a deletion and must
	// take a full snapshot. Guarded by mu.
	tombFloor uint64
	// keyBuf assembles composite net keys without allocating; guarded
	// by mu held for writing.
	keyBuf []byte

	// log is the circular changelog ring (see changeLogCap); logStart
	// indexes its oldest entry and logLen counts the live ones.
	// logFloor is the version of the newest evicted entry: bases at or
	// above it can be served from the ring alone. Guarded by mu.
	log      []changeEntry
	logStart int
	logLen   int
	logFloor uint64
	// Scratch key sets for the ring-served ChangedSince, reused across
	// calls so a per-tick delta allocates nothing once capacities
	// settle. Guarded by mu held for writing.
	scratchSys map[string]struct{}
	scratchNet map[status.NetKey]struct{}
	scratchSec map[string]struct{}

	// epoch counts sys content mutations; guarded by mu.
	epoch uint64
	// sysSnap is the current copy-on-write view of sys; nil when a
	// mutation has invalidated it. Rebuilt lazily on the next read,
	// which coalesces any burst of probe reports landing between two
	// selection requests into a single rebuild.
	sysSnap atomic.Pointer[SysSnapshot]
}

// New creates an empty database using the real clock.
func New() *DB { return NewWithClock(time.Now) }

// NewWithClock creates an empty database with an injected clock.
func NewWithClock(c Clock) *DB {
	return &DB{
		clock:   c,
		sys:     make(map[string]*SysRecord),
		net:     make(map[string]*NetRecord),
		sec:     make(map[string]*SecRecord),
		sysTomb: make(map[string]uint64),
		netTomb: make(map[status.NetKey]uint64),
		secTomb: make(map[string]uint64),
	}
}

// appendLogLocked records one mutation at the current version in the
// changelog ring, evicting the oldest entry (and raising logFloor)
// when the ring is full. Callers hold db.mu for writing and must have
// already advanced db.ver for this mutation.
func (db *DB) appendLogLocked(table uint8, key, key2 string) {
	if db.log == nil {
		db.log = make([]changeEntry, changeLogCap)
	}
	e := changeEntry{table: table, ver: db.ver, key: key, key2: key2}
	if db.logLen == changeLogCap {
		// Evict the oldest entry: a base below its version can no
		// longer prove it has seen everything, so the floor rises.
		db.logFloor = db.log[db.logStart].ver
		db.log[db.logStart] = e
		db.logStart = (db.logStart + 1) % changeLogCap
		return
	}
	db.log[(db.logStart+db.logLen)%changeLogCap] = e
	db.logLen++
}

// resetLogLocked discards the changelog, as after a whole-section
// Load: deltas can only resume from the current version.
func (db *DB) resetLogLocked() {
	db.logStart, db.logLen = 0, 0
	db.logFloor = db.ver
}

func netKey(from, to string) string { return from + "\x00" + to }

// netKeyLocked renders the composite key into the shared scratch
// buffer. Callers hold db.mu for writing and must not retain the
// string beyond the map operation it indexes.
func (db *DB) netKeyLocked(from, to []byte) []byte {
	db.keyBuf = append(db.keyBuf[:0], from...)
	db.keyBuf = append(db.keyBuf, 0)
	db.keyBuf = append(db.keyBuf, to...)
	return db.keyBuf
}

// invalidateSysLocked marks the sys table content-mutated. Callers
// hold db.mu for writing.
func (db *DB) invalidateSysLocked() {
	db.epoch++
	db.sysSnap.Store(nil)
}

// refreshSysLocked drops the cached snapshot after a timestamp-only
// refresh: the next SysView rebuild picks up the new UpdatedAt values
// while the epoch — and any selection memoized against it — stands.
func (db *DB) refreshSysLocked() {
	db.sysSnap.Store(nil)
}

// SysView returns the current copy-on-write snapshot of the server
// table: one atomic pointer load on the hot path, a lazy rebuild under
// the read lock after a mutation. The returned snapshot (including
// its Records slice) is immutable and shared between callers.
func (db *DB) SysView() *SysSnapshot {
	if s := db.sysSnap.Load(); s != nil {
		return s
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.sysViewRLocked()
}

// sysViewRLocked returns the current snapshot, rebuilding it when a
// mutation invalidated it. Callers hold db.mu at least for reading:
// writers are excluded, so a non-nil cached snapshot is current.
func (db *DB) sysViewRLocked() *SysSnapshot {
	if s := db.sysSnap.Load(); s != nil {
		return s
	}
	recs := make([]SysRecord, 0, len(db.sys))
	for _, r := range db.sys {
		recs = append(recs, *r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Status.Host < recs[j].Status.Host })
	s := &SysSnapshot{Epoch: db.epoch, Records: recs}
	db.sysSnap.Store(s)
	return s
}

// ResyncView returns the sys snapshot, the security table, and the
// (version, epoch) pair they correspond to, all read under one lock.
// It is the selection index's rebuild source — the analogue of the
// transport's full-snapshot resync when a delta base has fallen
// behind retained history.
func (db *DB) ResyncView() (snap *SysSnapshot, sec []SecRecord, ver, epoch uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	snap = db.sysViewRLocked()
	sec = make([]SecRecord, 0, len(db.sec))
	for _, r := range db.sec {
		sec = append(sec, *r)
	}
	sort.Slice(sec, func(i, j int) bool { return sec[i].Level.Host < sec[j].Level.Host })
	return snap, sec, db.ver, db.epoch
}

// SysEpoch reports the sys table's content-mutation counter.
func (db *DB) SysEpoch() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.epoch
}

// Ver reports the database-wide version counter: the stamp of the
// latest mutation across all three tables, refreshes included.
func (db *DB) Ver() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ver
}

// Now reads the database clock. Selection code uses it to compute
// freshness cutoffs against a snapshot's timestamps with the same
// clock that stamped them.
func (db *DB) Now() time.Time {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.clock()
}

// putSysLocked is the shared upsert: a same-content report refreshes
// the existing record in place (timestamp and RefVer only), a changed
// one replaces it and bumps the epoch. Callers hold db.mu for
// writing. Reports whether content changed.
func (db *DB) putSysLocked(s status.ServerStatus, now time.Time) bool {
	if r, ok := db.sys[s.Host]; ok && r.Status == s {
		db.ver++
		r.UpdatedAt = now
		r.RefVer = db.ver
		db.appendLogLocked(logSys, r.Status.Host, "")
		return false
	}
	db.ver++
	r := &SysRecord{Status: s, UpdatedAt: now, Ver: db.ver, RefVer: db.ver}
	db.sys[s.Host] = r
	delete(db.sysTomb, s.Host)
	db.appendLogLocked(logSys, r.Status.Host, "")
	return true
}

// PutSys inserts or updates a server status record (§3.2.2: existing
// addresses are updated in place, new ones inserted).
func (db *DB) PutSys(s status.ServerStatus) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.putSysLocked(s, db.clock()) {
		db.invalidateSysLocked()
	} else {
		db.refreshSysLocked()
	}
}

// GetSys returns the record for one host.
func (db *DB) GetSys(host string) (SysRecord, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.sys[host]
	if !ok {
		return SysRecord{}, false
	}
	return *r, true
}

// Sys returns all server records, sorted by host for determinism.
// The slice is the caller's to keep; it is copied off the current
// snapshot rather than assembled under the lock.
func (db *DB) Sys() []SysRecord {
	return append([]SysRecord(nil), db.SysView().Records...)
}

// FreshSys returns only the server records updated within maxAge,
// sorted by host. Readers that cannot wait for the monitor's expiry
// sweep (the wizard answering a selection request) use this to keep
// dead servers out of candidate lists between sweeps. A non-positive
// maxAge disables the filter.
func (db *DB) FreshSys(maxAge time.Duration) []SysRecord {
	if maxAge <= 0 {
		return db.Sys()
	}
	snap := db.SysView()
	cutoff := db.Now().Add(-maxAge)
	out := make([]SysRecord, 0, len(snap.Records))
	for _, r := range snap.Records {
		if !r.UpdatedAt.Before(cutoff) {
			out = append(out, r)
		}
	}
	return out
}

// SysLen reports the number of live server records.
func (db *DB) SysLen() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.sys)
}

// NetLen reports the number of live network metric records.
func (db *DB) NetLen() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.net)
}

// SecLen reports the number of live security level records.
func (db *DB) SecLen() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.sec)
}

// ExpireSys removes server records older than maxAge and returns the
// expired hosts. The system monitor calls this regularly; an expired
// server receives no further tasks until its probe resumes (§3.2.2).
// Each removal leaves a tombstone so mirrors learn of the deletion
// through deltas.
func (db *DB) ExpireSys(maxAge time.Duration) []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	cutoff := db.clock().Add(-maxAge)
	var expired []string
	for host, r := range db.sys {
		if r.UpdatedAt.Before(cutoff) {
			delete(db.sys, host)
			expired = append(expired, host)
		}
	}
	if len(expired) > 0 {
		db.ver++
		for _, host := range expired {
			db.sysTomb[host] = db.ver
			db.appendLogLocked(logSys, host, "")
		}
		db.pruneTombsLocked()
		db.invalidateSysLocked()
	}
	sort.Strings(expired)
	return expired
}

// PutNet inserts or updates a network metric record.
func (db *DB) PutNet(m status.NetMetric) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.putNetLocked(m, db.clock())
}

func (db *DB) putNetLocked(m status.NetMetric, now time.Time) {
	k := netKey(m.From, m.To)
	if r, ok := db.net[k]; ok && r.Metric == m {
		db.ver++
		r.UpdatedAt = now
		r.RefVer = db.ver
		db.appendLogLocked(logNet, r.Metric.From, r.Metric.To)
		return
	}
	db.ver++
	r := &NetRecord{Metric: m, UpdatedAt: now, Ver: db.ver, RefVer: db.ver}
	db.net[k] = r
	delete(db.netTomb, status.NetKey{From: m.From, To: m.To})
	db.appendLogLocked(logNet, r.Metric.From, r.Metric.To)
}

// GetNet returns the metric for one directed monitor pair.
func (db *DB) GetNet(from, to string) (NetRecord, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.net[netKey(from, to)]
	if !ok {
		return NetRecord{}, false
	}
	return *r, true
}

// Net returns all network records, sorted by (From, To).
func (db *DB) Net() []NetRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]NetRecord, 0, len(db.net))
	for _, r := range db.net {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Metric.From != out[j].Metric.From {
			return out[i].Metric.From < out[j].Metric.From
		}
		return out[i].Metric.To < out[j].Metric.To
	})
	return out
}

// ExpireNet removes network records older than maxAge, leaving
// tombstones.
func (db *DB) ExpireNet(maxAge time.Duration) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	cutoff := db.clock().Add(-maxAge)
	n := 0
	for k, r := range db.net {
		if r.UpdatedAt.Before(cutoff) {
			delete(db.net, k)
			if n == 0 {
				db.ver++
			}
			db.netTomb[status.NetKey{From: r.Metric.From, To: r.Metric.To}] = db.ver
			db.appendLogLocked(logNet, r.Metric.From, r.Metric.To)
			n++
		}
	}
	if n > 0 {
		db.pruneTombsLocked()
	}
	return n
}

// ExpireSec removes security records older than maxAge, leaving
// tombstones.
func (db *DB) ExpireSec(maxAge time.Duration) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	cutoff := db.clock().Add(-maxAge)
	n := 0
	for k, r := range db.sec {
		if r.UpdatedAt.Before(cutoff) {
			delete(db.sec, k)
			if n == 0 {
				db.ver++
			}
			db.secTomb[k] = db.ver
			db.appendLogLocked(logSec, r.Level.Host, "")
			n++
		}
	}
	if n > 0 {
		db.pruneTombsLocked()
	}
	return n
}

// PutSec inserts or updates a security record.
func (db *DB) PutSec(l status.SecLevel) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.putSecLocked(l, db.clock())
}

func (db *DB) putSecLocked(l status.SecLevel, now time.Time) {
	if r, ok := db.sec[l.Host]; ok && r.Level == l {
		db.ver++
		r.UpdatedAt = now
		r.RefVer = db.ver
		db.appendLogLocked(logSec, r.Level.Host, "")
		return
	}
	db.ver++
	r := &SecRecord{Level: l, UpdatedAt: now, Ver: db.ver, RefVer: db.ver}
	db.sec[l.Host] = r
	delete(db.secTomb, l.Host)
	db.appendLogLocked(logSec, r.Level.Host, "")
}

// GetSec returns the security record for one host.
func (db *DB) GetSec(host string) (SecRecord, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.sec[host]
	if !ok {
		return SecRecord{}, false
	}
	return *r, true
}

// Sec returns all security records, sorted by host.
func (db *DB) Sec() []SecRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]SecRecord, 0, len(db.sec))
	for _, r := range db.sec {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Level.Host < out[j].Level.Host })
	return out
}

// pruneTombsLocked drops a table's tombstones wholesale once it
// exceeds maxTombstones and raises the deletion floor, pushing any
// mirror with an older base onto a full resync.
func (db *DB) pruneTombsLocked() {
	if len(db.sysTomb) > maxTombstones {
		db.sysTomb = make(map[string]uint64)
		db.tombFloor = db.ver
	}
	if len(db.netTomb) > maxTombstones {
		db.netTomb = make(map[status.NetKey]uint64)
		db.tombFloor = db.ver
	}
	if len(db.secTomb) > maxTombstones {
		db.secTomb = make(map[string]uint64)
		db.tombFloor = db.ver
	}
}

// Snapshot copies the three databases into plain batches, the unit the
// transmitter ships to the receiver (§3.5.1).
func (db *DB) Snapshot() (sys []status.ServerStatus, net []status.NetMetric, sec []status.SecLevel) {
	sys, net, sec, _ = db.SnapshotAt()
	return sys, net, sec
}

// SnapshotAt is Snapshot plus the database version the batches
// represent, read atomically with the copy so a transmitter can
// resume the delta stream from exactly this point.
func (db *DB) SnapshotAt() (sys []status.ServerStatus, net []status.NetMetric, sec []status.SecLevel, ver uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sys = make([]status.ServerStatus, 0, len(db.sys))
	for _, r := range db.sys {
		sys = append(sys, r.Status)
	}
	net = make([]status.NetMetric, 0, len(db.net))
	for _, r := range db.net {
		net = append(net, r.Metric)
	}
	sec = make([]status.SecLevel, 0, len(db.sec))
	for _, r := range db.sec {
		sec = append(sec, r.Level)
	}
	sort.Slice(sys, func(i, j int) bool { return sys[i].Host < sys[j].Host })
	sort.Slice(net, func(i, j int) bool {
		if net[i].From != net[j].From {
			return net[i].From < net[j].From
		}
		return net[i].To < net[j].To
	})
	sort.Slice(sec, func(i, j int) bool { return sec[i].Host < sec[j].Host })
	return sys, net, sec, db.ver
}

// ChangedSince fills the three deltas with every mutation stamped
// after base — changed records, tombstones, and same-content
// refreshes — and returns the version the deltas bring a mirror to.
// The deltas' slices are reset and reused, so a per-tick caller
// allocates nothing once capacities settle. ok is false when base
// predates retained tombstone history (or lies ahead of this
// database, as after a source restart): the mirror could miss a
// deletion, so it must take a full snapshot instead.
func (db *DB) ChangedSince(base uint64, sys *status.SysDelta, net *status.NetDelta, sec *status.SecDelta) (ver uint64, ok bool) {
	ver, _, ok = db.ChangedSinceAt(base, sys, net, sec)
	return ver, ok
}

// ChangedSinceAt is ChangedSince plus the sys-table epoch the deltas
// bring a mirror to, read atomically with the version. Incremental
// consumers keyed by content epoch (the selection index) use the pair
// to prove their candidate sets match a snapshot.
//
// It takes the write lock: when base is recent enough the delta is
// assembled by walking only the changelog ring entries above base —
// cost proportional to the change rate — using scratch key sets owned
// by the database, and only a base older than the ring's floor pays
// the historical full-table scan.
func (db *DB) ChangedSinceAt(base uint64, sys *status.SysDelta, net *status.NetDelta, sec *status.SecDelta) (ver, epoch uint64, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if base < db.tombFloor || base > db.ver {
		return db.ver, db.epoch, false
	}
	sys.Reset(base, db.ver)
	net.Reset(base, db.ver)
	sec.Reset(base, db.ver)
	if base == db.ver {
		return db.ver, db.epoch, true
	}
	if base >= db.logFloor {
		db.changedFromLogLocked(base, sys, net, sec)
	} else {
		db.changedFromScanLocked(base, sys, net, sec)
	}
	sortSysDelta(sys)
	sortNetDelta(net)
	sortSecDelta(sec)
	return db.ver, db.epoch, true
}

// changedFromLogLocked classifies only the keys the changelog ring
// proves were stamped after base. A key may appear in several ring
// entries, so the scratch sets dedupe before the per-key
// classification, which matches changedFromScanLocked exactly: the
// live record decides changed-vs-refreshed, a tombstone above base
// decides deleted.
func (db *DB) changedFromLogLocked(base uint64, sys *status.SysDelta, net *status.NetDelta, sec *status.SecDelta) {
	if db.scratchSys == nil {
		db.scratchSys = make(map[string]struct{})
		db.scratchNet = make(map[status.NetKey]struct{})
		db.scratchSec = make(map[string]struct{})
	}
	for i := 0; i < db.logLen; i++ {
		e := &db.log[(db.logStart+i)%changeLogCap]
		if e.ver <= base {
			continue
		}
		switch e.table {
		case logSys:
			db.scratchSys[e.key] = struct{}{}
		case logNet:
			db.scratchNet[status.NetKey{From: e.key, To: e.key2}] = struct{}{}
		case logSec:
			db.scratchSec[e.key] = struct{}{}
		}
	}
	for host := range db.scratchSys {
		if r, live := db.sys[host]; live {
			if r.Ver > base {
				sys.Changed = append(sys.Changed, r.Status)
			} else if r.RefVer > base {
				sys.Refreshed = append(sys.Refreshed, host)
			}
		} else if db.sysTomb[host] > base {
			sys.Deleted = append(sys.Deleted, host)
		}
	}
	for k := range db.scratchNet {
		if r, live := db.net[netKey(k.From, k.To)]; live {
			if r.Ver > base {
				net.Changed = append(net.Changed, r.Metric)
			} else if r.RefVer > base {
				net.Refreshed = append(net.Refreshed, k)
			}
		} else if db.netTomb[k] > base {
			net.Deleted = append(net.Deleted, k)
		}
	}
	for host := range db.scratchSec {
		if r, live := db.sec[host]; live {
			if r.Ver > base {
				sec.Changed = append(sec.Changed, r.Level)
			} else if r.RefVer > base {
				sec.Refreshed = append(sec.Refreshed, host)
			}
		} else if db.secTomb[host] > base {
			sec.Deleted = append(sec.Deleted, host)
		}
	}
	clear(db.scratchSys)
	clear(db.scratchNet)
	clear(db.scratchSec)
}

// changedFromScanLocked is the historical full-table classification,
// kept for bases that predate the changelog ring.
func (db *DB) changedFromScanLocked(base uint64, sys *status.SysDelta, net *status.NetDelta, sec *status.SecDelta) {
	for host, r := range db.sys {
		if r.Ver > base {
			sys.Changed = append(sys.Changed, r.Status)
		} else if r.RefVer > base {
			sys.Refreshed = append(sys.Refreshed, host)
		}
	}
	for host, v := range db.sysTomb {
		if v > base {
			sys.Deleted = append(sys.Deleted, host)
		}
	}
	for _, r := range db.net {
		if r.Ver > base {
			net.Changed = append(net.Changed, r.Metric)
		} else if r.RefVer > base {
			net.Refreshed = append(net.Refreshed, status.NetKey{From: r.Metric.From, To: r.Metric.To})
		}
	}
	for k, v := range db.netTomb {
		if v > base {
			net.Deleted = append(net.Deleted, k)
		}
	}
	for host, r := range db.sec {
		if r.Ver > base {
			sec.Changed = append(sec.Changed, r.Level)
		} else if r.RefVer > base {
			sec.Refreshed = append(sec.Refreshed, host)
		}
	}
	for host, v := range db.secTomb {
		if v > base {
			sec.Deleted = append(sec.Deleted, host)
		}
	}
}

func sortSysDelta(d *status.SysDelta) {
	sort.Slice(d.Changed, func(i, j int) bool { return d.Changed[i].Host < d.Changed[j].Host })
	sort.Strings(d.Deleted)
	sort.Strings(d.Refreshed)
}

func sortNetDelta(d *status.NetDelta) {
	sort.Slice(d.Changed, func(i, j int) bool {
		if d.Changed[i].From != d.Changed[j].From {
			return d.Changed[i].From < d.Changed[j].From
		}
		return d.Changed[i].To < d.Changed[j].To
	})
	less := func(a, b status.NetKey) bool {
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	}
	sort.Slice(d.Deleted, func(i, j int) bool { return less(d.Deleted[i], d.Deleted[j]) })
	sort.Slice(d.Refreshed, func(i, j int) bool { return less(d.Refreshed[i], d.Refreshed[j]) })
}

func sortSecDelta(d *status.SecDelta) {
	sort.Slice(d.Changed, func(i, j int) bool { return d.Changed[i].Host < d.Changed[j].Host })
	sort.Strings(d.Deleted)
	sort.Strings(d.Refreshed)
}

// ApplySysDelta merges one decoded sys delta into the table: changed
// records are upserted, tombstoned hosts removed, refreshed hosts
// re-stamped in place. The deleted and refreshed keys may alias a
// frame buffer; they are not retained. The snapshot epoch bumps only
// when membership or content actually moved, so a refresh-only tick
// leaves the wizard's memoized selections valid.
func (db *DB) ApplySysDelta(changed []status.ServerStatus, deleted, refreshed [][]byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	now := db.clock()
	mutated := false
	for _, s := range changed {
		if db.putSysLocked(s, now) {
			mutated = true
		}
	}
	deletedAny := false
	for _, h := range deleted {
		if _, ok := db.sys[string(h)]; ok {
			delete(db.sys, string(h))
			// Mirror-side deletions get the same version/tombstone
			// bookkeeping as source-side expiries, so an incremental
			// consumer of this database (the wizard's selection index)
			// observes them through ChangedSince too.
			if !deletedAny {
				db.ver++
				deletedAny = true
			}
			host := string(h)
			db.sysTomb[host] = db.ver
			db.appendLogLocked(logSys, host, "")
			mutated = true
		}
	}
	if deletedAny {
		db.pruneTombsLocked()
	}
	refreshedAny := false
	for _, h := range refreshed {
		if r, ok := db.sys[string(h)]; ok {
			db.ver++
			r.UpdatedAt = now
			r.RefVer = db.ver
			db.appendLogLocked(logSys, r.Status.Host, "")
			refreshedAny = true
		}
	}
	if mutated {
		db.invalidateSysLocked()
	} else if refreshedAny {
		db.refreshSysLocked()
	}
}

// ApplyNetDelta merges one decoded net delta into the table.
func (db *DB) ApplyNetDelta(changed []status.NetMetric, deleted, refreshed []status.NetKeyView) {
	db.mu.Lock()
	defer db.mu.Unlock()
	now := db.clock()
	for _, m := range changed {
		db.putNetLocked(m, now)
	}
	deletedAny := false
	for _, k := range deleted {
		if _, ok := db.net[string(db.netKeyLocked(k.From, k.To))]; ok {
			delete(db.net, string(db.netKeyLocked(k.From, k.To)))
			if !deletedAny {
				db.ver++
				deletedAny = true
			}
			from, to := string(k.From), string(k.To)
			db.netTomb[status.NetKey{From: from, To: to}] = db.ver
			db.appendLogLocked(logNet, from, to)
		}
	}
	if deletedAny {
		db.pruneTombsLocked()
	}
	for _, k := range refreshed {
		if r, ok := db.net[string(db.netKeyLocked(k.From, k.To))]; ok {
			db.ver++
			r.UpdatedAt = now
			r.RefVer = db.ver
			db.appendLogLocked(logNet, r.Metric.From, r.Metric.To)
		}
	}
}

// ApplySecDelta merges one decoded sec delta into the table.
func (db *DB) ApplySecDelta(changed []status.SecLevel, deleted, refreshed [][]byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	now := db.clock()
	for _, l := range changed {
		db.putSecLocked(l, now)
	}
	deletedAny := false
	for _, h := range deleted {
		if _, ok := db.sec[string(h)]; ok {
			delete(db.sec, string(h))
			if !deletedAny {
				db.ver++
				deletedAny = true
			}
			host := string(h)
			db.secTomb[host] = db.ver
			db.appendLogLocked(logSec, host, "")
		}
	}
	if deletedAny {
		db.pruneTombsLocked()
	}
	for _, h := range refreshed {
		if r, ok := db.sec[string(h)]; ok {
			db.ver++
			r.UpdatedAt = now
			r.RefVer = db.ver
			db.appendLogLocked(logSec, r.Level.Host, "")
		}
	}
}

// Merge upserts received batches record by record under one lock,
// without clearing the tables first. The distributed-mode receiver
// uses it when combining pulls from several transmitters, so one
// transmitter's full reply cannot clobber the records another,
// fresher one contributed (the historical whole-table Load did).
// Records absent from every transmitter age out via the freshness
// filters instead of vanishing mid-merge.
func (db *DB) Merge(sys []status.ServerStatus, net []status.NetMetric, sec []status.SecLevel) {
	db.mu.Lock()
	defer db.mu.Unlock()
	now := db.clock()
	mutated, refreshed := false, false
	for _, s := range sys {
		if db.putSysLocked(s, now) {
			mutated = true
		} else {
			refreshed = true
		}
	}
	for _, m := range net {
		db.putNetLocked(m, now)
	}
	for _, l := range sec {
		db.putSecLocked(l, now)
	}
	if mutated {
		db.invalidateSysLocked()
	} else if refreshed {
		db.refreshSysLocked()
	}
}

// Load replaces whole sections of the database from received batches;
// the receiver uses it to mirror the transmitter's contents on a full
// snapshot or resync (§3.5.2). Nil slices leave the corresponding
// section untouched. Replacing a section discards its tombstone
// history, so the deletion floor advances: deltas can only resume
// from this version onward.
func (db *DB) Load(sys []status.ServerStatus, net []status.NetMetric, sec []status.SecLevel) {
	db.mu.Lock()
	defer db.mu.Unlock()
	now := db.clock()
	if sys != nil {
		db.ver++
		db.sys = make(map[string]*SysRecord, len(sys))
		for _, s := range sys {
			db.sys[s.Host] = &SysRecord{Status: s, UpdatedAt: now, Ver: db.ver, RefVer: db.ver}
		}
		db.sysTomb = make(map[string]uint64)
		db.tombFloor = db.ver
		db.invalidateSysLocked()
	}
	if net != nil {
		db.ver++
		db.net = make(map[string]*NetRecord, len(net))
		for _, m := range net {
			db.net[netKey(m.From, m.To)] = &NetRecord{Metric: m, UpdatedAt: now, Ver: db.ver, RefVer: db.ver}
		}
		db.netTomb = make(map[status.NetKey]uint64)
		db.tombFloor = db.ver
	}
	if sec != nil {
		db.ver++
		db.sec = make(map[string]*SecRecord, len(sec))
		for _, l := range sec {
			db.sec[l.Host] = &SecRecord{Level: l, UpdatedAt: now, Ver: db.ver, RefVer: db.ver}
		}
		db.secTomb = make(map[string]uint64)
		db.tombFloor = db.ver
	}
	if sys != nil || net != nil || sec != nil {
		// The replaced sections' per-record history is gone; like the
		// tombstone floor, the changelog restarts at this version.
		db.resetLogLocked()
	}
}
