// Package store holds the three status databases — sysdb, netdb and
// secdb (Fig 3.10) — that monitors write and the transmitter, receiver
// and wizard read. In the thesis these live in System V shared memory
// guarded by semaphores (Table 4.3); here the components are
// goroutines sharing one process, so a mutex-guarded map provides the
// same concurrent read/update semantics.
//
// Every record carries the timestamp of its last update. The system
// monitor expires records whose probe has missed several report
// intervals (§3.2.2), which is how servers leave the pool and how
// failures are detected.
package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"smartsock/internal/status"
)

// Clock abstracts time so tests can drive expiry deterministically.
type Clock func() time.Time

// SysRecord is a server status report plus its arrival time.
type SysRecord struct {
	Status    status.ServerStatus
	UpdatedAt time.Time
}

// NetRecord is a network metric plus its measurement time.
type NetRecord struct {
	Metric    status.NetMetric
	UpdatedAt time.Time
}

// SecRecord is a security level plus its report time.
type SecRecord struct {
	Level     status.SecLevel
	UpdatedAt time.Time
}

// SysSnapshot is an immutable, epoch-versioned view of the server
// status table. Writers publish a new snapshot when the table
// mutates; readers grab the current one with a single atomic load, so
// the selection hot path evaluates candidates without copying the
// table or holding any lock. Records is sorted by host and shared:
// callers must treat it as read-only.
type SysSnapshot struct {
	// Epoch increments on every mutation of the sys table; two
	// snapshots with the same epoch have identical contents.
	Epoch   uint64
	Records []SysRecord
}

// DB is the full status database shared by the monitors, the
// transmitter/receiver pair and the wizard.
type DB struct {
	mu    sync.RWMutex
	clock Clock
	sys   map[string]SysRecord // keyed by server host
	net   map[string]NetRecord // keyed by From+"→"+To
	sec   map[string]SecRecord // keyed by host

	// epoch counts sys mutations; guarded by mu.
	epoch uint64
	// sysSnap is the current copy-on-write view of sys; nil when a
	// mutation has invalidated it. Rebuilt lazily on the next read,
	// which coalesces any burst of probe reports landing between two
	// selection requests into a single rebuild.
	sysSnap atomic.Pointer[SysSnapshot]
}

// New creates an empty database using the real clock.
func New() *DB { return NewWithClock(time.Now) }

// NewWithClock creates an empty database with an injected clock.
func NewWithClock(c Clock) *DB {
	return &DB{
		clock: c,
		sys:   make(map[string]SysRecord),
		net:   make(map[string]NetRecord),
		sec:   make(map[string]SecRecord),
	}
}

func netKey(from, to string) string { return from + "\x00" + to }

// invalidateSysLocked marks the sys table mutated. Callers hold
// db.mu for writing.
func (db *DB) invalidateSysLocked() {
	db.epoch++
	db.sysSnap.Store(nil)
}

// SysView returns the current copy-on-write snapshot of the server
// table: one atomic pointer load on the hot path, a lazy rebuild under
// the read lock after a mutation. The returned snapshot (including
// its Records slice) is immutable and shared between callers.
func (db *DB) SysView() *SysSnapshot {
	if s := db.sysSnap.Load(); s != nil {
		return s
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	// Another reader may have rebuilt while we waited for the lock;
	// writers are excluded here, so a non-nil snapshot is current.
	if s := db.sysSnap.Load(); s != nil {
		return s
	}
	recs := make([]SysRecord, 0, len(db.sys))
	for _, r := range db.sys {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Status.Host < recs[j].Status.Host })
	s := &SysSnapshot{Epoch: db.epoch, Records: recs}
	db.sysSnap.Store(s)
	return s
}

// SysEpoch reports the sys table's mutation counter.
func (db *DB) SysEpoch() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.epoch
}

// Now reads the database clock. Selection code uses it to compute
// freshness cutoffs against a snapshot's timestamps with the same
// clock that stamped them.
func (db *DB) Now() time.Time {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.clock()
}

// PutSys inserts or updates a server status record (§3.2.2: existing
// addresses are updated in place, new ones inserted).
func (db *DB) PutSys(s status.ServerStatus) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.sys[s.Host] = SysRecord{Status: s, UpdatedAt: db.clock()}
	db.invalidateSysLocked()
}

// GetSys returns the record for one host.
func (db *DB) GetSys(host string) (SysRecord, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.sys[host]
	return r, ok
}

// Sys returns all server records, sorted by host for determinism.
// The slice is the caller's to keep; it is copied off the current
// snapshot rather than assembled under the lock.
func (db *DB) Sys() []SysRecord {
	return append([]SysRecord(nil), db.SysView().Records...)
}

// FreshSys returns only the server records updated within maxAge,
// sorted by host. Readers that cannot wait for the monitor's expiry
// sweep (the wizard answering a selection request) use this to keep
// dead servers out of candidate lists between sweeps. A non-positive
// maxAge disables the filter.
func (db *DB) FreshSys(maxAge time.Duration) []SysRecord {
	if maxAge <= 0 {
		return db.Sys()
	}
	snap := db.SysView()
	cutoff := db.Now().Add(-maxAge)
	out := make([]SysRecord, 0, len(snap.Records))
	for _, r := range snap.Records {
		if !r.UpdatedAt.Before(cutoff) {
			out = append(out, r)
		}
	}
	return out
}

// SysLen reports the number of live server records.
func (db *DB) SysLen() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.sys)
}

// ExpireSys removes server records older than maxAge and returns the
// expired hosts. The system monitor calls this regularly; an expired
// server receives no further tasks until its probe resumes (§3.2.2).
func (db *DB) ExpireSys(maxAge time.Duration) []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	cutoff := db.clock().Add(-maxAge)
	var expired []string
	for host, r := range db.sys {
		if r.UpdatedAt.Before(cutoff) {
			delete(db.sys, host)
			expired = append(expired, host)
		}
	}
	if len(expired) > 0 {
		db.invalidateSysLocked()
	}
	sort.Strings(expired)
	return expired
}

// PutNet inserts or updates a network metric record.
func (db *DB) PutNet(m status.NetMetric) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.net[netKey(m.From, m.To)] = NetRecord{Metric: m, UpdatedAt: db.clock()}
}

// GetNet returns the metric for one directed monitor pair.
func (db *DB) GetNet(from, to string) (NetRecord, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.net[netKey(from, to)]
	return r, ok
}

// Net returns all network records, sorted by (From, To).
func (db *DB) Net() []NetRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]NetRecord, 0, len(db.net))
	for _, r := range db.net {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Metric.From != out[j].Metric.From {
			return out[i].Metric.From < out[j].Metric.From
		}
		return out[i].Metric.To < out[j].Metric.To
	})
	return out
}

// ExpireNet removes network records older than maxAge.
func (db *DB) ExpireNet(maxAge time.Duration) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	cutoff := db.clock().Add(-maxAge)
	n := 0
	for k, r := range db.net {
		if r.UpdatedAt.Before(cutoff) {
			delete(db.net, k)
			n++
		}
	}
	return n
}

// ExpireSec removes security records older than maxAge.
func (db *DB) ExpireSec(maxAge time.Duration) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	cutoff := db.clock().Add(-maxAge)
	n := 0
	for k, r := range db.sec {
		if r.UpdatedAt.Before(cutoff) {
			delete(db.sec, k)
			n++
		}
	}
	return n
}

// PutSec inserts or updates a security record.
func (db *DB) PutSec(l status.SecLevel) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.sec[l.Host] = SecRecord{Level: l, UpdatedAt: db.clock()}
}

// GetSec returns the security record for one host.
func (db *DB) GetSec(host string) (SecRecord, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.sec[host]
	return r, ok
}

// Sec returns all security records, sorted by host.
func (db *DB) Sec() []SecRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]SecRecord, 0, len(db.sec))
	for _, r := range db.sec {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Level.Host < out[j].Level.Host })
	return out
}

// Snapshot copies the three databases into plain batches, the unit the
// transmitter ships to the receiver (§3.5.1).
func (db *DB) Snapshot() (sys []status.ServerStatus, net []status.NetMetric, sec []status.SecLevel) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sys = make([]status.ServerStatus, 0, len(db.sys))
	for _, r := range db.sys {
		sys = append(sys, r.Status)
	}
	net = make([]status.NetMetric, 0, len(db.net))
	for _, r := range db.net {
		net = append(net, r.Metric)
	}
	sec = make([]status.SecLevel, 0, len(db.sec))
	for _, r := range db.sec {
		sec = append(sec, r.Level)
	}
	sort.Slice(sys, func(i, j int) bool { return sys[i].Host < sys[j].Host })
	sort.Slice(net, func(i, j int) bool {
		if net[i].From != net[j].From {
			return net[i].From < net[j].From
		}
		return net[i].To < net[j].To
	})
	sort.Slice(sec, func(i, j int) bool { return sec[i].Host < sec[j].Host })
	return sys, net, sec
}

// Load replaces whole sections of the database from received batches;
// the receiver uses it to mirror the transmitter's contents (§3.5.2).
// Nil slices leave the corresponding section untouched.
func (db *DB) Load(sys []status.ServerStatus, net []status.NetMetric, sec []status.SecLevel) {
	db.mu.Lock()
	defer db.mu.Unlock()
	now := db.clock()
	if sys != nil {
		db.sys = make(map[string]SysRecord, len(sys))
		for _, s := range sys {
			db.sys[s.Host] = SysRecord{Status: s, UpdatedAt: now}
		}
		db.invalidateSysLocked()
	}
	if net != nil {
		db.net = make(map[string]NetRecord, len(net))
		for _, m := range net {
			db.net[netKey(m.From, m.To)] = NetRecord{Metric: m, UpdatedAt: now}
		}
	}
	if sec != nil {
		db.sec = make(map[string]SecRecord, len(sec))
		for _, l := range sec {
			db.sec[l.Host] = SecRecord{Level: l, UpdatedAt: now}
		}
	}
}
