// Package netmon implements the network monitor of §3.3.3. Each
// server group runs one monitor; monitors know their neighbours and
// probe the paths between groups for (delay, bandwidth) pairs, which
// the wizard consults for requirements like
// "(delay < 20ms) && (bandwidth > 10Mbps)".
//
// Probing is strictly sequential — the thesis warns that concurrent
// probes interfere with one another and inflate network load — and
// the interval is expected to grow with the number of peer groups,
// since a full mesh of n groups needs n×(n−1) probes.
package netmon

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"smartsock/internal/bwest"
	"smartsock/internal/status"
	"smartsock/internal/store"
)

// Peer is a neighbouring network monitor and the probe-able path that
// leads to it.
type Peer struct {
	// Name identifies the remote monitor (netmon-2, …).
	Name string
	// Prober measures RTTs on the path to the peer; a simnet.Path in
	// the simulated testbed or a bwest.UDPProber on a live network.
	Prober bwest.Prober
	// MTU of the local interface toward this peer; probe sizes are
	// derived from it (§3.3.2 rules).
	MTU int
}

// Config parameterises a network monitor.
type Config struct {
	// Name identifies this monitor in the records it produces.
	Name string
	// Peers are the neighbouring monitors to probe.
	Peers []Peer
	// DB receives the NetMetric records.
	DB *store.DB
	// Interval between full probe rounds. The thesis uses 2 s for a
	// few peers; it should grow with the peer count. Defaults to
	// 2 s × max(1, len(Peers)).
	Interval time.Duration
	// DelayProbes per peer for the min-filtered delay estimate.
	// Defaults to 4.
	DelayProbes int
	// BandwidthRuns for the UDP-stream estimate. Defaults to 3.
	BandwidthRuns int
	// Logger receives probe failures; nil silences them.
	Logger *log.Logger
}

// Monitor probes peer paths and records network metrics.
type Monitor struct {
	cfg Config

	mu     sync.Mutex
	rounds int
}

// New validates the config and builds a monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("netmon: empty monitor name")
	}
	if cfg.DB == nil {
		return nil, fmt.Errorf("netmon: nil database")
	}
	for i, p := range cfg.Peers {
		if p.Name == "" || p.Prober == nil {
			return nil, fmt.Errorf("netmon: peer %d incomplete", i)
		}
	}
	if cfg.Interval <= 0 {
		n := len(cfg.Peers)
		if n < 1 {
			n = 1
		}
		cfg.Interval = 2 * time.Second * time.Duration(n)
	}
	if cfg.DelayProbes <= 0 {
		cfg.DelayProbes = 4
	}
	if cfg.BandwidthRuns <= 0 {
		cfg.BandwidthRuns = 3
	}
	return &Monitor{cfg: cfg}, nil
}

// Rounds reports how many full probe rounds have completed.
func (m *Monitor) Rounds() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rounds
}

// Run probes all peers at the configured interval until the context
// is cancelled. The first round runs immediately.
func (m *Monitor) Run(ctx context.Context) error {
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		m.ProbeAll(ctx)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// ProbeAll measures every peer path once, sequentially, and stores
// the results. It returns the metrics of this round.
func (m *Monitor) ProbeAll(ctx context.Context) []status.NetMetric {
	metrics := make([]status.NetMetric, 0, len(m.cfg.Peers))
	for _, peer := range m.cfg.Peers {
		if ctx != nil && ctx.Err() != nil {
			return metrics
		}
		metric, err := m.ProbePeer(peer)
		if err != nil {
			m.logf("netmon %s: probing %s: %v", m.cfg.Name, peer.Name, err)
			continue
		}
		m.cfg.DB.PutNet(metric)
		metrics = append(metrics, metric)
	}
	m.mu.Lock()
	m.rounds++
	m.mu.Unlock()
	return metrics
}

// ProbePeer measures delay and available bandwidth to one peer.
func (m *Monitor) ProbePeer(peer Peer) (status.NetMetric, error) {
	// Delay: the minimum RTT of small probes, halved for the one-way
	// figure users reason about ("delay < 20ms").
	delay := time.Duration(1<<62 - 1)
	for i := 0; i < m.cfg.DelayProbes; i++ {
		if d := peer.Prober.ProbeRTT(64); d < delay {
			delay = d
		}
	}
	s1, s2 := bwest.OptimalSizes(peer.MTU)
	st, err := bwest.Estimate(peer.Prober, bwest.StreamConfig{
		S1: s1, S2: s2, Runs: m.cfg.BandwidthRuns,
	})
	if err != nil {
		return status.NetMetric{}, err
	}
	return status.NetMetric{
		From:      m.cfg.Name,
		To:        peer.Name,
		Delay:     delay / 2,
		Bandwidth: st.Avg,
	}, nil
}

func (m *Monitor) logf(format string, args ...any) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.Printf(format, args...)
	}
}
