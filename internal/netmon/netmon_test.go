package netmon

import (
	"context"
	"math"
	"testing"
	"time"

	"smartsock/internal/simnet"
	"smartsock/internal/store"
)

func mkPath(t *testing.T, name string, capacity float64, prop time.Duration, util float64) *simnet.Path {
	t.Helper()
	p, err := simnet.New(simnet.Config{
		Name: name, MTU: 1500, SpeedInit: 25e6, Jitter: 0.02, Seed: 42,
		Hops: []simnet.Hop{{Capacity: capacity, PropDelay: prop, Utilization: util}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	db := store.New()
	if _, err := New(Config{DB: db}); err == nil {
		t.Error("accepted empty name")
	}
	if _, err := New(Config{Name: "m"}); err == nil {
		t.Error("accepted nil db")
	}
	if _, err := New(Config{Name: "m", DB: db, Peers: []Peer{{}}}); err == nil {
		t.Error("accepted incomplete peer")
	}
}

func TestProbeAllRecordsMetrics(t *testing.T) {
	db := store.New()
	m, err := New(Config{
		Name: "netmon-1",
		DB:   db,
		Peers: []Peer{
			{Name: "netmon-2", Prober: mkPath(t, "p2", 100e6, 2*time.Millisecond, 0), MTU: 1500},
			{Name: "netmon-3", Prober: mkPath(t, "p3", 10e6, 8*time.Millisecond, 0.3), MTU: 1500},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := m.ProbeAll(context.Background())
	if len(got) != 2 {
		t.Fatalf("probed %d peers, want 2", len(got))
	}
	r2, ok := db.GetNet("netmon-1", "netmon-2")
	if !ok {
		t.Fatal("no record for netmon-2")
	}
	r3, ok := db.GetNet("netmon-1", "netmon-3")
	if !ok {
		t.Fatal("no record for netmon-3")
	}
	// The fast path must report clearly more bandwidth and less delay
	// than the slow loaded one (Table 3.4's whole point).
	if r2.Metric.Bandwidth <= r3.Metric.Bandwidth {
		t.Errorf("bw(netmon-2)=%.1f ≤ bw(netmon-3)=%.1f Mbps",
			r2.Metric.Bandwidth/1e6, r3.Metric.Bandwidth/1e6)
	}
	if r2.Metric.Delay >= r3.Metric.Delay {
		t.Errorf("delay(netmon-2)=%v ≥ delay(netmon-3)=%v", r2.Metric.Delay, r3.Metric.Delay)
	}
	// Estimates land in the right regime.
	if math.Abs(r2.Metric.Bandwidth-100e6)/100e6 > 0.3 {
		t.Errorf("bandwidth to netmon-2 = %.1f Mbps, want ≈100", r2.Metric.Bandwidth/1e6)
	}
	if r3.Metric.Delay < 4*time.Millisecond {
		t.Errorf("one-way delay to netmon-3 = %v, want ≥ 4 ms", r3.Metric.Delay)
	}
	if m.Rounds() != 1 {
		t.Errorf("Rounds = %d", m.Rounds())
	}
}

func TestRunProbesPeriodically(t *testing.T) {
	db := store.New()
	m, err := New(Config{
		Name:     "netmon-1",
		DB:       db,
		Interval: 20 * time.Millisecond,
		Peers: []Peer{
			{Name: "netmon-2", Prober: mkPath(t, "p", 100e6, time.Millisecond, 0), MTU: 1500},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	m.Run(ctx)
	if m.Rounds() < 2 {
		t.Errorf("Rounds = %d after several intervals", m.Rounds())
	}
}

func TestDefaultIntervalScalesWithPeers(t *testing.T) {
	// §3.3.3: "The probing interval should get larger as the number of
	// network paths increases."
	db := store.New()
	peers := make([]Peer, 5)
	for i := range peers {
		peers[i] = Peer{Name: "x", Prober: mkPath(t, "p", 1e6, 0, 0), MTU: 1500}
	}
	m, err := New(Config{Name: "n", DB: db, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.Interval != 10*time.Second {
		t.Errorf("default interval = %v for 5 peers, want 10 s", m.cfg.Interval)
	}
}

func TestProbeAllHonoursCancellation(t *testing.T) {
	db := store.New()
	m, err := New(Config{
		Name: "n", DB: db,
		Peers: []Peer{
			{Name: "a", Prober: mkPath(t, "p", 1e6, 0, 0), MTU: 1500},
			{Name: "b", Prober: mkPath(t, "p", 1e6, 0, 0), MTU: 1500},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := m.ProbeAll(ctx); len(got) != 0 {
		t.Errorf("cancelled ProbeAll measured %d peers", len(got))
	}
}
