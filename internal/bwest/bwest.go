// Package bwest implements the bandwidth estimation methods the
// thesis builds and compares (§3.3):
//
//   - the One-Way UDP Stream method, the thesis's own contribution: a
//     packet-pair derivative that sends probes of two sizes S1, S2,
//     measures round-trip times via ICMP port-unreachable echoes, and
//     estimates the available bandwidth as B = (S2−S1)/(T2−T1)
//     (Eq. 3.5), with the probe-size rules of §3.3.2 (both sizes
//     above the MTU, as small as possible, equal fragment counts);
//
//   - a pipechar-style packet-pair estimator (single-ended, measures
//     bottleneck capacity from echo dispersion, fragile under delay
//     variation);
//
//   - a pathload-style SLoPS estimator (rate binary search using
//     one-way delay trends, two-ended but accurate).
//
// All three run against small probing interfaces, implemented both by
// the simnet path model and (for the UDP stream method) by a live
// UDP echo prober, so the estimators themselves are identical in
// simulation and on a real network.
package bwest

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Prober measures the round-trip time of one UDP probe of the given
// payload size (§3.3.2's measurement primitive).
type Prober interface {
	ProbeRTT(payload int) time.Duration
}

// PairProber measures the echo dispersion of a back-to-back packet
// pair (pipechar's primitive).
type PairProber interface {
	ProbePair(payload int) time.Duration
}

// StreamSender transmits a fixed-rate packet stream and reports the
// per-packet one-way delays (pathload's SLoPS primitive).
type StreamSender interface {
	SendStream(payload, n int, rate float64) []time.Duration
}

// Stats summarises repeated bandwidth estimates, in bits per second —
// the Min/Max/Avg columns of Table 3.3.
type Stats struct {
	Min, Max, Avg float64
	Samples       []float64
}

func summarize(samples []float64) Stats {
	st := Stats{Min: math.Inf(1), Max: math.Inf(-1), Samples: samples}
	if len(samples) == 0 {
		return Stats{}
	}
	sum := 0.0
	for _, s := range samples {
		if s < st.Min {
			st.Min = s
		}
		if s > st.Max {
			st.Max = s
		}
		sum += s
	}
	st.Avg = sum / float64(len(samples))
	return st
}

// StreamConfig parameterises the one-way UDP stream method.
type StreamConfig struct {
	// S1 and S2 are the two probe payload sizes in bytes; §3.3.2's
	// rules apply. OptimalSizes derives good values from the MTU.
	S1, S2 int
	// ProbesPerSize is how many probes of each size go into a single
	// estimate; the minimum RTT per size filters queueing noise.
	// Defaults to 8.
	ProbesPerSize int
	// Runs is how many independent estimates to compute (the rows
	// behind Table 3.3's Min/Max/Avg). Defaults to 5.
	Runs int
}

func (c *StreamConfig) setDefaults() error {
	if c.S1 <= 0 || c.S2 <= 0 {
		return fmt.Errorf("bwest: probe sizes must be positive, got %d and %d", c.S1, c.S2)
	}
	if c.S2 <= c.S1 {
		return fmt.Errorf("bwest: need S2 > S1, got S1=%d S2=%d", c.S1, c.S2)
	}
	if c.ProbesPerSize <= 0 {
		c.ProbesPerSize = 8
	}
	if c.Runs <= 0 {
		c.Runs = 5
	}
	return nil
}

// OptimalSizes applies the §3.3.2 probe-size rules to an interface
// MTU: both sizes above the MTU so Speed_init cancels, as small as
// possible, and with equal fragment counts (two fragments each). For
// MTU 1500 this yields the thesis's preferred 1600/2900 pair.
func OptimalSizes(mtu int) (s1, s2 int) {
	if mtu <= 0 {
		return 1600, 2900
	}
	return mtu + 100, 2*mtu - 100
}

// minRTT probes size k times and returns the smallest RTT observed.
// Queueing delay is strictly additive, so the minimum approaches the
// noise-free delay of Eq. 3.6.
func minRTT(p Prober, size, k int) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < k; i++ {
		if d := p.ProbeRTT(size); d < best {
			best = d
		}
	}
	return best
}

// EstimateOnce computes a single available-bandwidth estimate in bits
// per second using Eq. 3.5.
func EstimateOnce(p Prober, cfg StreamConfig) (float64, error) {
	if err := cfg.setDefaults(); err != nil {
		return 0, err
	}
	t1 := minRTT(p, cfg.S1, cfg.ProbesPerSize)
	t2 := minRTT(p, cfg.S2, cfg.ProbesPerSize)
	dt := t2 - t1
	if dt <= 0 {
		return 0, fmt.Errorf("bwest: non-increasing delay (T1=%v T2=%v); path too noisy for sizes %d/%d",
			t1, t2, cfg.S1, cfg.S2)
	}
	bytesPerSec := float64(cfg.S2-cfg.S1) / dt.Seconds()
	return bytesPerSec * 8, nil
}

// Estimate runs the one-way UDP stream method cfg.Runs times and
// summarises the results (a Table 3.3 row).
func Estimate(p Prober, cfg StreamConfig) (Stats, error) {
	if err := cfg.setDefaults(); err != nil {
		return Stats{}, err
	}
	samples := make([]float64, 0, cfg.Runs)
	var lastErr error
	for i := 0; i < cfg.Runs; i++ {
		b, err := EstimateOnce(p, cfg)
		if err != nil {
			lastErr = err
			continue
		}
		samples = append(samples, b)
	}
	if len(samples) == 0 {
		return Stats{}, fmt.Errorf("bwest: all %d runs failed: %w", cfg.Runs, lastErr)
	}
	return summarize(samples), nil
}

// RTTPoint is one sample of the RTT-versus-packet-size sweeps behind
// Figs 3.3–3.6.
type RTTPoint struct {
	Size int
	RTT  time.Duration
}

// RTTSweep probes payload sizes from 1 to maxSize in the given step
// (the thesis sweeps 1..6000 step 10) and returns the curve.
func RTTSweep(p Prober, maxSize, step int) []RTTPoint {
	if step <= 0 {
		step = 10
	}
	var pts []RTTPoint
	for s := 1; s <= maxSize; s += step {
		pts = append(pts, RTTPoint{Size: s, RTT: p.ProbeRTT(s)})
	}
	return pts
}

// FitSlopes fits the RTT curve with two linear segments split at the
// given threshold and returns the two slopes in seconds per byte.
// Slope1 covers sizes ≤ threshold, Slope2 sizes > threshold; the
// thesis predicts Slope1 = 1/B + 1/Speed_init and Slope2 = 1/B
// (§3.3.2), so Slope1 > Slope2 reveals the MTU break.
func FitSlopes(pts []RTTPoint, threshold int) (slope1, slope2 float64) {
	var lo, hi []RTTPoint
	for _, pt := range pts {
		if pt.Size <= threshold {
			lo = append(lo, pt)
		} else {
			hi = append(hi, pt)
		}
	}
	return fitLine(lo), fitLine(hi)
}

// fitLine returns the least-squares slope of RTT (seconds) over size
// (bytes).
func fitLine(pts []RTTPoint) float64 {
	s, _, _ := fitLineFull(pts)
	return s
}

// fitLineFull returns the least-squares slope, intercept and residual
// sum of squares of RTT (seconds) over size (bytes).
func fitLineFull(pts []RTTPoint) (slope, intercept, sse float64) {
	n := float64(len(pts))
	if n < 2 {
		return 0, 0, 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x := float64(p.Size)
		y := p.RTT.Seconds()
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	for _, p := range pts {
		r := p.RTT.Seconds() - (slope*float64(p.Size) + intercept)
		sse += r * r
	}
	return slope, intercept, sse
}

// DetectMTU estimates the slope-break threshold of an RTT sweep — how
// an operator reads the knee off Figs 3.3–3.5 without knowing the
// interface MTU. It is a changepoint fit: the split minimising the
// total residual error of two independent line segments, accepted
// only when the low-side slope exceeds the high side (the Eq. 3.6
// signature).
func DetectMTU(pts []RTTPoint) int {
	if len(pts) < 8 {
		return 0
	}
	// Candidate thresholds leave at least a handful of points on each
	// side so both fits are meaningful.
	margin := 4
	if len(pts)/32 > margin {
		margin = len(pts) / 32
	}
	bestSize := 0
	bestSSE := math.Inf(1)
	for i := margin; i < len(pts)-margin; i++ {
		lo := pts[:i+1]
		hi := pts[i+1:]
		s1, _, e1 := fitLineFull(lo)
		s2, _, e2 := fitLineFull(hi)
		if s1 <= s2 {
			continue // not a knee of the right shape
		}
		if sse := e1 + e2; sse < bestSSE {
			bestSSE = sse
			bestSize = pts[i].Size
		}
	}
	return bestSize
}

// Pipechar is the packet-pair baseline: it derives the bottleneck
// rate from the echo dispersion of back-to-back pairs. It is
// single-ended and quick but, as §3.3.1 notes, "highly sensitive to
// network delay variations" — the noise goes straight into the gap.
type Pipechar struct {
	// Payload per probe; defaults to 1472 (a full Ethernet frame).
	Payload int
	// Pairs to send; the median gap is used. Defaults to 16.
	Pairs int
}

// Estimate returns the estimated bottleneck bandwidth in bits/s.
func (pc Pipechar) Estimate(p PairProber) (float64, error) {
	payload := pc.Payload
	if payload <= 0 {
		payload = 1472
	}
	pairs := pc.Pairs
	if pairs <= 0 {
		pairs = 16
	}
	gaps := make([]time.Duration, 0, pairs)
	for i := 0; i < pairs; i++ {
		if g := p.ProbePair(payload); g > 0 {
			gaps = append(gaps, g)
		}
	}
	if len(gaps) == 0 {
		return 0, fmt.Errorf("bwest: pipechar got no usable pair gaps")
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	med := gaps[len(gaps)/2]
	wire := payload + 28 + 18 // IP+UDP headers plus frame overhead
	return float64(wire*8) / med.Seconds(), nil
}

// Pathload is the SLoPS baseline: a binary search on stream rate,
// declaring a rate "above the available bandwidth" when one-way
// delays trend upward across the stream (§3.3.1). Needs cooperation
// from the far end (the StreamSender), like the real tool.
type Pathload struct {
	// Lo and Hi bracket the search in bits/s. Defaults 1e6..1e9.
	Lo, Hi float64
	// StreamLen is packets per stream. Defaults to 60.
	StreamLen int
	// Payload per packet. Defaults to 300 bytes, pathload's default
	// region.
	Payload int
	// Iterations of the binary search. Defaults to 12.
	Iterations int
}

// Estimate returns the converged [low, high] available-bandwidth
// range in bits/s, like the real pathload's "96.1~101.3" output.
func (pl Pathload) Estimate(s StreamSender) (lo, hi float64, err error) {
	if pl.Lo <= 0 {
		pl.Lo = 1e6
	}
	if pl.Hi <= pl.Lo {
		pl.Hi = 1e9
	}
	if pl.StreamLen <= 0 {
		pl.StreamLen = 60
	}
	if pl.Payload <= 0 {
		pl.Payload = 300
	}
	if pl.Iterations <= 0 {
		pl.Iterations = 12
	}
	lo, hi = pl.Lo, pl.Hi
	for i := 0; i < pl.Iterations; i++ {
		rate := (lo + hi) / 2
		delays := s.SendStream(pl.Payload, pl.StreamLen, rate)
		if len(delays) < 4 {
			return 0, 0, fmt.Errorf("bwest: pathload stream returned %d delays", len(delays))
		}
		if increasingTrend(delays) {
			hi = rate // congested: rate exceeds available bandwidth
		} else {
			lo = rate
		}
	}
	return lo, hi, nil
}

// increasingTrend applies pathload's pairwise comparison test: the
// stream is "increasing" when clearly more than half of consecutive
// deltas are positive.
func increasingTrend(delays []time.Duration) bool {
	inc := 0
	for i := 1; i < len(delays); i++ {
		if delays[i] > delays[i-1] {
			inc++
		}
	}
	return float64(inc) > 0.60*float64(len(delays)-1)
}
