package bwest

import (
	"fmt"
	"math"
	"time"
)

// Hop-by-hop tracing, the pipechar mode shown in Appendix A: TTL-
// limited probes expire at successive routers, each hop's RTT slope
// gives the *cumulative* inverse bandwidth to that hop, and the
// difference between consecutive slopes isolates each link. Noise on
// far hops routinely makes the difference negative — the real tool
// prints "bad fluctuation" there, and so does this one.

// HopProber measures TTL-limited round-trip times: the time until the
// ICMP time-exceeded reply from the hop'th router arrives.
type HopProber interface {
	ProbeHop(hop, payload int) (time.Duration, error)
	NumHops() int
}

// HopReport is one line of a trace (one router).
type HopReport struct {
	// Hop index, 0-based from the sender.
	Hop int
	// MinRTT and AvgRTT of the small probe, the Appendix A columns.
	MinRTT, AvgRTT time.Duration
	// LinkBandwidth estimates this hop's link in bits/s; 0 when the
	// measurement fluctuated.
	LinkBandwidth float64
	// Fluctuation marks hops whose slope difference came out
	// non-positive ("32 bad fluctuation" in pipechar's output).
	Fluctuation bool
}

// TraceConfig parameterises a hop-by-hop trace.
type TraceConfig struct {
	// S1 and S2 are the two probe sizes; OptimalSizes defaults apply
	// when zero.
	S1, S2 int
	// ProbesPerHop per size; the min filters queueing. Defaults to 8.
	ProbesPerHop int
}

// Trace probes every hop and derives per-link bandwidth, Appendix A
// style.
func Trace(p HopProber, cfg TraceConfig) ([]HopReport, error) {
	if cfg.S1 <= 0 || cfg.S2 <= 0 {
		cfg.S1, cfg.S2 = OptimalSizes(0)
	}
	if cfg.S2 <= cfg.S1 {
		return nil, fmt.Errorf("bwest: trace needs S2 > S1, got %d/%d", cfg.S1, cfg.S2)
	}
	if cfg.ProbesPerHop <= 0 {
		cfg.ProbesPerHop = 8
	}
	n := p.NumHops()
	if n == 0 {
		return nil, fmt.Errorf("bwest: path has no hops to trace")
	}
	reports := make([]HopReport, n)
	prevSlope := 0.0
	for hop := 0; hop < n; hop++ {
		min1, avg1, err := hopStats(p, hop, cfg.S1, cfg.ProbesPerHop)
		if err != nil {
			return nil, err
		}
		min2, _, err := hopStats(p, hop, cfg.S2, cfg.ProbesPerHop)
		if err != nil {
			return nil, err
		}
		slope := (min2 - min1).Seconds() / float64(cfg.S2-cfg.S1) // s per byte, cumulative
		r := HopReport{Hop: hop, MinRTT: min1, AvgRTT: avg1}
		delta := slope - prevSlope
		if delta <= 0 {
			r.Fluctuation = true
		} else {
			r.LinkBandwidth = 8 / delta // bytes/s → bits/s
		}
		if slope > prevSlope {
			prevSlope = slope
		}
		reports[hop] = r
	}
	return reports, nil
}

func hopStats(p HopProber, hop, size, k int) (min, avg time.Duration, err error) {
	min = time.Duration(math.MaxInt64)
	var sum time.Duration
	for i := 0; i < k; i++ {
		d, err := p.ProbeHop(hop, size)
		if err != nil {
			return 0, 0, err
		}
		if d < min {
			min = d
		}
		sum += d
	}
	return min, sum / time.Duration(k), nil
}

// FormatTrace renders reports in the style of the Appendix A listing.
func FormatTrace(reports []HopReport) string {
	out := ""
	for _, r := range reports {
		line := fmt.Sprintf("%2d: min RTT %v, avg RTT %v", r.Hop+1,
			r.MinRTT.Round(time.Microsecond), r.AvgRTT.Round(time.Microsecond))
		if r.Fluctuation {
			line += "  | bad fluctuation"
		} else {
			line += fmt.Sprintf("  | %.3f Mbps", r.LinkBandwidth/1e6)
		}
		out += line + "\n"
	}
	return out
}
