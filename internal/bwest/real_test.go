package bwest

import (
	"context"
	"testing"
	"time"
)

func startEcho(t *testing.T) *EchoServer {
	t.Helper()
	srv, err := NewEchoServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go srv.Run(ctx)
	return srv
}

func TestLiveProbeRTT(t *testing.T) {
	srv := startEcho(t)
	p, err := NewUDPProber(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, size := range []int{16, 200, 1400, 8000} {
		rtt := p.ProbeRTT(size)
		if rtt <= 0 || rtt > time.Second {
			t.Errorf("payload %d: RTT = %v", size, rtt)
		}
	}
}

func TestLiveProbeTinyPayloadPadded(t *testing.T) {
	// Payloads below the 16-byte header are padded up, not rejected.
	srv := startEcho(t)
	p, err := NewUDPProber(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if rtt := p.ProbeRTT(1); rtt <= 0 || rtt > time.Second {
		t.Errorf("RTT = %v", rtt)
	}
}

func TestLiveProbeTimeoutLooksLikeLoss(t *testing.T) {
	// Probing a port where nothing listens must yield a huge RTT (the
	// min-filter then discards it), not a hang or a panic.
	p, err := NewUDPProber("127.0.0.1:1", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	rtt := p.ProbeRTT(100)
	if rtt < time.Hour {
		t.Errorf("lost probe produced plausible RTT %v", rtt)
	}
	if time.Since(start) > time.Second {
		t.Error("timeout not honoured")
	}
}

func TestLiveProbeIgnoresStaleEchoes(t *testing.T) {
	// First probe times out (we freeze the echo), its echo arrives
	// during the second probe's window and must be ignored because the
	// sequence number differs.
	srv := startEcho(t)
	p, err := NewUDPProber(srv.Addr(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Normal probes around it still measure fine.
	if rtt := p.ProbeRTT(64); rtt > time.Second {
		t.Errorf("probe 1 lost: %v", rtt)
	}
	if rtt := p.ProbeRTT(64); rtt > time.Second {
		t.Errorf("probe 2 lost: %v", rtt)
	}
}

func TestEchoServerIgnoresRunts(t *testing.T) {
	srv := startEcho(t)
	p, err := NewUDPProber(srv.Addr(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// A runt datagram from a raw socket gets no echo; the prober's
	// next full probe still works.
	raw, err := NewUDPProber(srv.Addr(), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if rtt := p.ProbeRTT(64); rtt > time.Second {
		t.Errorf("probe after runt lost: %v", rtt)
	}
}

func TestLiveEstimatorRunsOverLoopback(t *testing.T) {
	// Loopback has no meaningful bandwidth to estimate (T2−T1 is noise
	// scale), but the estimator must behave sanely: either a value or
	// a clean error, never a hang.
	srv := startEcho(t)
	p, err := NewUDPProber(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		Estimate(p, StreamConfig{S1: 1600, S2: 2900, Runs: 2, ProbesPerSize: 4})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("live estimate hung")
	}
}
