package bwest

import (
	"strings"
	"testing"
	"time"

	"smartsock/internal/simnet"
)

// tracePath builds a 4-hop path with distinct link capacities.
func tracePath(t *testing.T, jitter float64) *simnet.Path {
	t.Helper()
	p, err := simnet.New(simnet.Config{
		Name: "trace", MTU: 1500, SpeedInit: 25e6,
		SysOverhead: 30 * time.Microsecond, Jitter: jitter, Seed: 3,
		Hops: []simnet.Hop{
			{Capacity: 100e6, PropDelay: 20 * time.Microsecond, ProcDelay: 2 * time.Microsecond},
			{Capacity: 1e9, PropDelay: 50 * time.Microsecond, ProcDelay: 3 * time.Microsecond},
			{Capacity: 45e6, PropDelay: 200 * time.Microsecond, ProcDelay: 3 * time.Microsecond},
			{Capacity: 622e6, PropDelay: 100 * time.Microsecond, ProcDelay: 3 * time.Microsecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTraceIdentifiesPerLinkBandwidth(t *testing.T) {
	p := tracePath(t, 0) // noise-free: every link resolves exactly
	reports, err := Trace(p, TraceConfig{S1: 1600, S2: 2900})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("got %d reports", len(reports))
	}
	want := []float64{100e6, 1e9, 45e6, 622e6}
	for i, r := range reports {
		if r.Fluctuation {
			t.Errorf("hop %d fluctuated on a noise-free path", i)
			continue
		}
		if rel := (r.LinkBandwidth - want[i]) / want[i]; rel > 0.15 || rel < -0.15 {
			t.Errorf("hop %d bandwidth = %.1f Mbps, want %.1f", i, r.LinkBandwidth/1e6, want[i]/1e6)
		}
	}
	// Cumulative RTT must grow with hop count.
	for i := 1; i < len(reports); i++ {
		if reports[i].MinRTT <= reports[i-1].MinRTT {
			t.Errorf("hop %d RTT %v not beyond hop %d's %v",
				i, reports[i].MinRTT, i-1, reports[i-1].MinRTT)
		}
	}
}

func TestTraceMarksFluctuationsUnderNoise(t *testing.T) {
	// Appendix A's real trace is littered with "bad fluctuation" on
	// the WAN hops; heavy jitter must produce the same marker rather
	// than negative bandwidths.
	p := tracePath(t, 0.5)
	reports, err := Trace(p, TraceConfig{S1: 1600, S2: 2900, ProbesPerHop: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.Fluctuation && r.LinkBandwidth <= 0 {
			t.Errorf("hop %d: non-fluctuating report with bandwidth %v", r.Hop, r.LinkBandwidth)
		}
	}
}

func TestTraceValidation(t *testing.T) {
	p := tracePath(t, 0)
	if _, err := Trace(p, TraceConfig{S1: 500, S2: 100}); err == nil {
		t.Error("accepted S2 < S1")
	}
	if _, err := p.ProbeHop(99, 100); err == nil {
		t.Error("ProbeHop accepted out-of-range hop")
	}
}

func TestFormatTrace(t *testing.T) {
	out := FormatTrace([]HopReport{
		{Hop: 0, MinRTT: time.Millisecond, AvgRTT: 2 * time.Millisecond, LinkBandwidth: 95.346e6},
		{Hop: 1, MinRTT: 2 * time.Millisecond, AvgRTT: 3 * time.Millisecond, Fluctuation: true},
	})
	if !strings.Contains(out, "95.346 Mbps") {
		t.Errorf("missing bandwidth:\n%s", out)
	}
	if !strings.Contains(out, "bad fluctuation") {
		t.Errorf("missing fluctuation marker:\n%s", out)
	}
}
