package bwest

import (
	"math"
	"testing"
	"time"

	"smartsock/internal/simnet"
)

// thesisPath is the 100 Mbps / MTU 1500 / Speed_init 25 Mbps campus
// path of §3.3.2 with mild LAN jitter.
func thesisPath(t testing.TB, jitter float64, seed int64) *simnet.Path {
	t.Helper()
	p, err := simnet.New(simnet.Config{
		Name:        "sagit-suna",
		MTU:         1500,
		SpeedInit:   25e6,
		SysOverhead: 50 * time.Microsecond,
		Jitter:      jitter,
		Seed:        seed,
		Hops: []simnet.Hop{
			{Capacity: 100e6, PropDelay: 20 * time.Microsecond, ProcDelay: 2 * time.Microsecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOptimalSizes(t *testing.T) {
	s1, s2 := OptimalSizes(1500)
	if s1 != 1600 || s2 != 2900 {
		t.Errorf("OptimalSizes(1500) = %d,%d, want 1600,2900 (thesis group 7)", s1, s2)
	}
	s1, s2 = OptimalSizes(0)
	if s1 != 1600 || s2 != 2900 {
		t.Errorf("OptimalSizes(0) fallback = %d,%d", s1, s2)
	}
	s1, s2 = OptimalSizes(1000)
	if s1 <= 1000 || s2 <= s1 {
		t.Errorf("OptimalSizes(1000) = %d,%d violates the rules", s1, s2)
	}
}

func TestStreamConfigValidation(t *testing.T) {
	p := thesisPath(t, 0, 1)
	if _, err := EstimateOnce(p, StreamConfig{S1: 0, S2: 100}); err == nil {
		t.Error("accepted S1=0")
	}
	if _, err := EstimateOnce(p, StreamConfig{S1: 200, S2: 100}); err == nil {
		t.Error("accepted S2 < S1")
	}
}

func TestUDPStreamAccurateAboveMTU(t *testing.T) {
	// Table 3.3, group 7: with S1=1600, S2=2900 the estimate lands
	// near the true available bandwidth.
	p := thesisPath(t, 0.02, 7)
	st, err := Estimate(p, StreamConfig{S1: 1600, S2: 2900, Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	truth := p.EffectiveBandwidth()
	if math.Abs(st.Avg-truth)/truth > 0.15 {
		t.Errorf("avg estimate %.1f Mbps, truth %.1f Mbps", st.Avg/1e6, truth/1e6)
	}
}

func TestUDPStreamUnderestimatesBelowMTU(t *testing.T) {
	// Table 3.3, groups 1–3: with both sizes below the MTU, Eq. 3.7
	// predicts 1/B' = 1/B + 1/Speed_init ⇒ ≈20 Mbps on a ≈95 Mbps
	// path with Speed_init 25 Mbps.
	p := thesisPath(t, 0.02, 3)
	st, err := Estimate(p, StreamConfig{S1: 100, S2: 500, Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	b := p.EffectiveBandwidth()
	want := 1 / (1/b + 1/25e6)
	if math.Abs(st.Avg-want)/want > 0.2 {
		t.Errorf("sub-MTU estimate %.1f Mbps, want ≈%.1f Mbps (Eq. 3.7)", st.Avg/1e6, want/1e6)
	}
	if st.Avg > 0.35*b {
		t.Errorf("sub-MTU estimate %.1f Mbps not clearly below truth %.1f Mbps", st.Avg/1e6, b/1e6)
	}
}

func TestUDPStreamTracksCrossTraffic(t *testing.T) {
	// The whole point of the method: estimates follow available
	// bandwidth as cross traffic changes.
	p := thesisPath(t, 0.02, 11)
	cfg := StreamConfig{S1: 1600, S2: 2900, Runs: 3}
	idle, err := Estimate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetUtilization(0, 0.6); err != nil {
		t.Fatal(err)
	}
	loaded, err := Estimate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Avg >= idle.Avg*0.7 {
		t.Errorf("estimate barely moved under 60%% load: idle %.1f, loaded %.1f Mbps",
			idle.Avg/1e6, loaded.Avg/1e6)
	}
}

func TestEstimateFailsOnNonIncreasingDelay(t *testing.T) {
	// A prober that returns constant RTTs (e.g. all probes lost and
	// clamped) must produce an error, not a division by zero.
	if _, err := EstimateOnce(constProber(time.Millisecond), StreamConfig{S1: 100, S2: 200}); err == nil {
		t.Error("expected error for flat RTT curve")
	}
}

type constProber time.Duration

func (c constProber) ProbeRTT(int) time.Duration { return time.Duration(c) }

func TestRTTSweepAndDetectMTU(t *testing.T) {
	// Figs 3.3–3.5: the sweep's knee sits near the configured MTU.
	for _, mtu := range []int{1500, 1000, 500} {
		p, err := simnet.New(simnet.Config{
			Name: "knee", MTU: mtu, SpeedInit: 25e6, Jitter: 0.01, Seed: 2,
			Hops: []simnet.Hop{{Capacity: 100e6}},
		})
		if err != nil {
			t.Fatal(err)
		}
		pts := RTTSweep(p, 6000, 10)
		if len(pts) != 600 {
			t.Fatalf("sweep returned %d points", len(pts))
		}
		knee := DetectMTU(pts)
		if d := math.Abs(float64(knee - mtu)); d > float64(mtu)*0.15 {
			t.Errorf("MTU %d: detected knee at %d", mtu, knee)
		}
	}
}

func TestDetectMTUShadowedOnWAN(t *testing.T) {
	// Observation 4 (§3.3.2): a large, noisy base RTT hides the
	// threshold. The detector should not find a knee anywhere near a
	// clean MTU break — the slope gain must be tiny relative to noise.
	p, err := simnet.New(simnet.Config{
		Name: "wan", MTU: 1500, SpeedInit: 25e6, Jitter: 0.25, Seed: 5,
		Hops: []simnet.Hop{
			{Capacity: 100e6, PropDelay: time.Millisecond},
			{Capacity: 155e6, PropDelay: 60 * time.Millisecond, Utilization: 0.4},
			{Capacity: 100e6, PropDelay: 2 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := RTTSweep(p, 6000, 10)
	s1, s2 := FitSlopes(pts, 1500)
	// On the LAN the slope drop is ≈ 1/Speed_init; here noise drowns
	// it, so the measured drop is not a reliable signal.
	gain := s1 - s2
	ref := 8.0 / 25e6
	if gain > ref*3 {
		t.Errorf("WAN slope gain %.3g suspiciously clean (ref %.3g)", gain, ref)
	}
}

func TestFitSlopesOnSyntheticLine(t *testing.T) {
	mk := func(slope float64, n int) []RTTPoint {
		pts := make([]RTTPoint, n)
		for i := range pts {
			size := (i + 1) * 10
			pts[i] = RTTPoint{Size: size, RTT: time.Duration(slope * float64(size) * float64(time.Second))}
		}
		return pts
	}
	pts := mk(2e-6, 100)
	s1, s2 := FitSlopes(pts, 500)
	if math.Abs(s1-2e-6) > 1e-9 || math.Abs(s2-2e-6) > 1e-9 {
		t.Errorf("slopes = %g, %g, want 2e-6", s1, s2)
	}
	if fitLine(nil) != 0 || fitLine(pts[:1]) != 0 {
		t.Error("degenerate fits should return 0")
	}
}

func TestPipecharOnQuietPath(t *testing.T) {
	// §2.1/§3.3.1: pipechar nails the bottleneck capacity on quiet
	// paths (Table 3.3 reports 95.346 Mbps on the 100BT link).
	p := thesisPath(t, 0.01, 13)
	got, err := Pipechar{}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100e6)/100e6 > 0.1 {
		t.Errorf("pipechar = %.1f Mbps, want ≈100", got/1e6)
	}
}

func TestPipecharDegradesUnderDelayVariation(t *testing.T) {
	// §3.3.1: "for networks under heavy load or with high delay
	// variations, pipechar will report wrong results."
	quiet := thesisPath(t, 0.01, 17)
	noisy, err := simnet.New(simnet.Config{
		Name: "noisy", MTU: 1500, SpeedInit: 25e6, Jitter: 0.8, Seed: 17,
		Hops: []simnet.Hop{
			{Capacity: 100e6, PropDelay: 20 * time.Millisecond, Utilization: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	qEst, err := Pipechar{}.Estimate(quiet)
	if err != nil {
		t.Fatal(err)
	}
	nEst, err := Pipechar{}.Estimate(noisy)
	if err != nil {
		t.Fatal(err)
	}
	qErr := math.Abs(qEst-100e6) / 100e6
	nErr := math.Abs(nEst-100e6) / 100e6
	if nErr <= qErr {
		t.Errorf("pipechar error did not grow with delay variation: quiet %.2f vs noisy %.2f", qErr, nErr)
	}
}

func TestPathloadBracketsAvailableBandwidth(t *testing.T) {
	// Table 3.3 reports pathload 96.1~101.3 on the ≈95 Mbps path: the
	// SLoPS search converges around the true available bandwidth.
	p := thesisPath(t, 0.02, 19)
	lo, hi, err := Pathload{Lo: 1e6, Hi: 1e9}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	truth := p.AvailableBandwidth()
	if lo > truth*1.15 || hi < truth*0.85 {
		t.Errorf("pathload range [%.1f, %.1f] Mbps does not bracket truth %.1f",
			lo/1e6, hi/1e6, truth/1e6)
	}
	if hi < lo {
		t.Error("inverted range")
	}
}

func TestPathloadTracksCrossTraffic(t *testing.T) {
	p := thesisPath(t, 0.02, 23)
	if err := p.SetUtilization(0, 0.5); err != nil {
		t.Fatal(err)
	}
	lo, hi, err := Pathload{Lo: 1e6, Hi: 1e9}.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	mid := (lo + hi) / 2
	if math.Abs(mid-50e6)/50e6 > 0.3 {
		t.Errorf("pathload mid %.1f Mbps under 50%% load, want ≈50", mid/1e6)
	}
}

func TestSummarize(t *testing.T) {
	st := summarize([]float64{3, 1, 2})
	if st.Min != 1 || st.Max != 3 || st.Avg != 2 {
		t.Errorf("summarize = %+v", st)
	}
	if z := summarize(nil); z.Min != 0 || z.Max != 0 || z.Avg != 0 {
		t.Errorf("empty summarize = %+v", z)
	}
}
