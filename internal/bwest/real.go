package bwest

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"
)

// The thesis probes with plain UDP datagrams and times the ICMP
// port-unreachable errors they trigger, so no software runs on the
// target. Raw ICMP sockets need privileges this library should not
// demand, so the live prober uses a minimal UDP echo service instead:
// the probe carries a 16-byte header (sequence number + nonce) and
// the echoer returns just that header, mimicking the small ICMP
// reply. The timing semantics — large packet out, tiny packet back —
// are identical.

const echoHeaderLen = 16

// EchoServer is the far-end reflector for live RTT probing.
type EchoServer struct {
	conn *net.UDPConn
}

// NewEchoServer binds a UDP echo server; addr may use port 0.
func NewEchoServer(addr string) (*EchoServer, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("bwest: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("bwest: listen: %w", err)
	}
	return &EchoServer{conn: conn}, nil
}

// Addr reports the bound address.
func (e *EchoServer) Addr() string { return e.conn.LocalAddr().String() }

// Run echoes probe headers until the context is cancelled.
func (e *EchoServer) Run(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		// The read loop below surfaces the close as net.ErrClosed.
		_ = e.conn.Close()
	}()
	buf := make([]byte, 64*1024)
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("bwest: echo read: %w", err)
		}
		if n < echoHeaderLen {
			continue
		}
		// Reply with the header only: a small datagram back, like the
		// ICMP error message.
		if _, err := e.conn.WriteToUDP(buf[:echoHeaderLen], from); err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
		}
	}
}

// UDPProber measures live round-trip times against an EchoServer. It
// implements Prober.
type UDPProber struct {
	conn    *net.UDPConn
	seq     uint64
	timeout time.Duration
	buf     []byte
}

// NewUDPProber dials the echo server. timeout bounds each probe; 0
// means one second.
func NewUDPProber(target string, timeout time.Duration) (*UDPProber, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		return nil, fmt.Errorf("bwest: resolve %q: %w", target, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("bwest: dial: %w", err)
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	return &UDPProber{conn: conn, timeout: timeout, buf: make([]byte, 64*1024)}, nil
}

// Close releases the prober's socket.
func (u *UDPProber) Close() error { return u.conn.Close() }

// ProbeRTT sends one probe of the given payload size and returns the
// echo round-trip time. Lost probes (timeouts) return a very large
// duration, which the min-filter in the estimator discards naturally.
func (u *UDPProber) ProbeRTT(payload int) time.Duration {
	if payload < echoHeaderLen {
		payload = echoHeaderLen
	}
	u.seq++
	msg := make([]byte, payload)
	binary.BigEndian.PutUint64(msg, u.seq)
	binary.BigEndian.PutUint64(msg[8:], uint64(time.Now().UnixNano()))

	start := time.Now()
	if _, err := u.conn.Write(msg); err != nil {
		return time.Duration(1<<62 - 1)
	}
	deadline := start.Add(u.timeout)
	for {
		if err := u.conn.SetReadDeadline(deadline); err != nil {
			return time.Duration(1<<62 - 1) // dead socket: treated as loss
		}
		n, err := u.conn.Read(u.buf)
		if err != nil {
			return time.Duration(1<<62 - 1) // timeout: treated as loss
		}
		if n >= 8 && binary.BigEndian.Uint64(u.buf) == u.seq {
			return time.Since(start)
		}
		// Stale echo from an earlier timed-out probe: keep waiting.
	}
}
