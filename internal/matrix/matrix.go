// Package matrix implements the thesis's first evaluation
// application (§5.3.1, Appendix C): a square matrix multiplication
// program with a local mode ("the 2 input matrices will be multiplied
// in a vector multiplication way") and a distributed mode, where the
// master partitions the result into blocks, ships the matching input
// rows and columns to worker servers over the sockets the Smart
// library returned, and assembles the result blocks as they come
// back.
//
// The paper's testbed has heterogeneous CPUs (P3-866 to P4-2.4);
// here all workers run on one machine, so a Worker carries a
// SpeedFactor that stretches its compute time to match a slower
// processor. The benchmark step of Fig 5.2 measures exactly these
// factors back out.
package matrix

import (
	"fmt"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("matrix: invalid shape %dx%d", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}, nil
}

// NewRandom fills a matrix with deterministic pseudo-random entries.
func NewRandom(rows, cols int, seed int64) (*Matrix, error) {
	m, err := NewMatrix(rows, cols)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Equal reports whether two matrices match within eps.
func (m *Matrix) Equal(other *Matrix, eps float64) bool {
	if other == nil || m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - other.Data[i]
		if d > eps || d < -eps {
			return false
		}
	}
	return true
}

// Rows is not stored per-block; helpers below slice matrices for the
// distributed protocol.

// RowBlock copies rows [r0, r1) into a new (r1−r0)×Cols matrix.
func (m *Matrix) RowBlock(r0, r1 int) (*Matrix, error) {
	if r0 < 0 || r1 > m.Rows || r0 >= r1 {
		return nil, fmt.Errorf("matrix: bad row block [%d,%d) of %d", r0, r1, m.Rows)
	}
	out := &Matrix{Rows: r1 - r0, Cols: m.Cols}
	out.Data = append([]float64(nil), m.Data[r0*m.Cols:r1*m.Cols]...)
	return out, nil
}

// ColBlock copies columns [c0, c1) into a new Rows×(c1−c0) matrix.
func (m *Matrix) ColBlock(c0, c1 int) (*Matrix, error) {
	if c0 < 0 || c1 > m.Cols || c0 >= c1 {
		return nil, fmt.Errorf("matrix: bad col block [%d,%d) of %d", c0, c1, m.Cols)
	}
	w := c1 - c0
	out := &Matrix{Rows: m.Rows, Cols: w, Data: make([]float64, m.Rows*w)}
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*w:(i+1)*w], m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out, nil
}

// MultiplyLocal computes a×b the way the thesis's local mode does:
// plain row-by-column vector products.
func MultiplyLocal(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("matrix: %dx%d × %dx%d shapes do not chain", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c, err := NewMatrix(a.Rows, b.Cols)
	if err != nil {
		return nil, err
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c, nil
}

// Blocks enumerates the blk×blk result tiles of an n×n product, the
// unit of distribution (Appendix C.1: "the entries in the input
// matrices are transferred to the available servers"). Tail blocks
// are smaller when blk does not divide n.
type Block struct {
	R0, R1, C0, C1 int
}

// Blocks returns the tile list for an n×n result with tile size blk.
func Blocks(n, blk int) ([]Block, error) {
	if n <= 0 || blk <= 0 {
		return nil, fmt.Errorf("matrix: invalid n=%d blk=%d", n, blk)
	}
	if blk > n {
		blk = n
	}
	var out []Block
	for r := 0; r < n; r += blk {
		r1 := r + blk
		if r1 > n {
			r1 = n
		}
		for c := 0; c < n; c += blk {
			c1 := c + blk
			if c1 > n {
				c1 = n
			}
			out = append(out, Block{R0: r, R1: r1, C0: c, C1: c1})
		}
	}
	return out, nil
}
