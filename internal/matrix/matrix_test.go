package matrix

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func mustRandom(t *testing.T, n int, seed int64) *Matrix {
	t.Helper()
	m, err := NewRandom(n, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(0, 5); err == nil {
		t.Error("accepted 0 rows")
	}
	if _, err := NewMatrix(5, -1); err == nil {
		t.Error("accepted negative cols")
	}
}

func TestMultiplyLocalIdentity(t *testing.T) {
	a := mustRandom(t, 8, 1)
	id, _ := NewMatrix(8, 8)
	for i := 0; i < 8; i++ {
		id.Set(i, i, 1)
	}
	c, err := MultiplyLocal(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(a, 1e-12) {
		t.Error("A×I ≠ A")
	}
	c2, err := MultiplyLocal(id, a)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Equal(a, 1e-12) {
		t.Error("I×A ≠ A")
	}
}

func TestMultiplyLocalKnownValues(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Matrix{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	c, err := MultiplyLocal(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Errorf("C[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMultiplyLocalShapeMismatch(t *testing.T) {
	a, _ := NewMatrix(2, 3)
	b, _ := NewMatrix(2, 3)
	if _, err := MultiplyLocal(a, b); err == nil {
		t.Error("accepted non-chaining shapes")
	}
}

func TestBlocksCoverSquareExactly(t *testing.T) {
	blocks, err := Blocks(10, 4) // uneven tail: 4,4,2
	if err != nil {
		t.Fatal(err)
	}
	covered := make([][]bool, 10)
	for i := range covered {
		covered[i] = make([]bool, 10)
	}
	for _, b := range blocks {
		for i := b.R0; i < b.R1; i++ {
			for j := b.C0; j < b.C1; j++ {
				if covered[i][j] {
					t.Fatalf("cell (%d,%d) covered twice", i, j)
				}
				covered[i][j] = true
			}
		}
	}
	for i := range covered {
		for j := range covered[i] {
			if !covered[i][j] {
				t.Fatalf("cell (%d,%d) uncovered", i, j)
			}
		}
	}
	if _, err := Blocks(0, 4); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := Blocks(4, 0); err == nil {
		t.Error("accepted blk=0")
	}
}

func TestPropertyBlocksPartition(t *testing.T) {
	prop := func(nRaw, blkRaw uint8) bool {
		n := int(nRaw%50) + 1
		blk := int(blkRaw%60) + 1
		blocks, err := Blocks(n, blk)
		if err != nil {
			return false
		}
		cells := 0
		for _, b := range blocks {
			if b.R0 < 0 || b.R1 > n || b.C0 < 0 || b.C1 > n || b.R0 >= b.R1 || b.C0 >= b.C1 {
				return false
			}
			cells += (b.R1 - b.R0) * (b.C1 - b.C0)
		}
		return cells == n*n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRowColBlocks(t *testing.T) {
	m := &Matrix{Rows: 3, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}}
	r, err := m.RowBlock(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows != 2 || r.Data[0] != 4 || r.Data[5] != 9 {
		t.Errorf("RowBlock = %+v", r)
	}
	c, err := m.ColBlock(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cols != 2 || c.At(0, 0) != 1 || c.At(2, 1) != 8 {
		t.Errorf("ColBlock = %+v", c)
	}
	if _, err := m.RowBlock(2, 2); err == nil {
		t.Error("accepted empty row block")
	}
	if _, err := m.ColBlock(-1, 2); err == nil {
		t.Error("accepted negative col block")
	}
}

// startWorkers launches n in-process workers and dials one connection
// to each.
func startWorkers(t *testing.T, speeds []float64) []net.Conn {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	conns := make([]net.Conn, len(speeds))
	for i, speed := range speeds {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		w := &Worker{SpeedFactor: speed, Name: "w"}
		go w.Serve(ctx, ln)
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		conns[i] = conn
	}
	return conns
}

func TestDistributedMatchesLocal(t *testing.T) {
	a := mustRandom(t, 30, 1)
	b := mustRandom(t, 30, 2)
	want, err := MultiplyLocal(a, b)
	if err != nil {
		t.Fatal(err)
	}
	conns := startWorkers(t, []float64{1, 1, 1})
	got, err := Distribute(context.Background(), a, b, 8, conns)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Error("distributed result differs from local")
	}
}

func TestDistributedUnevenBlocks(t *testing.T) {
	a := mustRandom(t, 25, 3)
	b := mustRandom(t, 25, 4)
	want, _ := MultiplyLocal(a, b)
	conns := startWorkers(t, []float64{1, 0.5})
	got, err := Distribute(context.Background(), a, b, 10, conns)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Error("uneven-tail distributed result differs from local")
	}
}

func TestDistributedSingleWorker(t *testing.T) {
	a := mustRandom(t, 12, 5)
	b := mustRandom(t, 12, 6)
	want, _ := MultiplyLocal(a, b)
	conns := startWorkers(t, []float64{1})
	got, err := Distribute(context.Background(), a, b, 5, conns)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Error("single-worker result differs")
	}
}

func TestDistributedValidation(t *testing.T) {
	a := mustRandom(t, 4, 1)
	b := mustRandom(t, 4, 2)
	if _, err := Distribute(context.Background(), a, b, 2, nil); err == nil {
		t.Error("accepted empty connection list")
	}
	rect := &Matrix{Rows: 2, Cols: 4, Data: make([]float64, 8)}
	conns := startWorkers(t, []float64{1})
	if _, err := Distribute(context.Background(), rect, b, 2, conns); err == nil {
		t.Error("accepted non-square input")
	}
}

func TestDistributedWorkerDeathReportsError(t *testing.T) {
	a := mustRandom(t, 20, 7)
	b := mustRandom(t, 20, 8)
	// A connection to a server that immediately closes.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			conn.Close()
		}
		ln.Close()
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := Distribute(ctx, a, b, 10, []net.Conn{conn}); err == nil {
		t.Error("dead worker went unnoticed")
	}
}

func TestSlowWorkerStretchesTime(t *testing.T) {
	// The speed-factor substitution: the same tile takes visibly
	// longer on a "slow CPU". Modeled op-cost timing makes the ratio
	// deterministic regardless of host speed and protocol overhead.
	a := mustRandom(t, 100, 9)
	b := mustRandom(t, 100, 10)
	run := func(speed float64) time.Duration {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		// OpCost is large enough that the modeled time dominates the
		// real multiply and protocol overhead even under -race.
		w := &Worker{SpeedFactor: speed, OpCost: 100 * time.Millisecond}
		go w.Serve(ctx, ln)
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		start := time.Now()
		if _, err := Distribute(ctx, a, b, 100, conn2slice(conn)); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	fast := run(1.0) // modeled: 1e6 ops → ≈100 ms
	slow := run(0.2) // modeled: ≈500 ms
	if slow < fast*2 {
		t.Errorf("speed 0.2 took %v, speed 1.0 took %v; want ≥2× stretch", slow, fast)
	}
}

func conn2slice(c net.Conn) []net.Conn { return []net.Conn{c} }

func TestFasterWorkersTakeMoreTiles(t *testing.T) {
	// Self-balancing task queue: with one fast and one slow worker,
	// throughput comes mostly from the fast one but both contribute —
	// the property behind the 6v6 "communication overhead" discussion.
	a := mustRandom(t, 40, 11)
	b := mustRandom(t, 40, 12)
	want, _ := MultiplyLocal(a, b)
	conns := startWorkers(t, []float64{1, 0.1})
	got, err := Distribute(context.Background(), a, b, 5, conns)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Error("heterogeneous result differs")
	}
}

func TestEqual(t *testing.T) {
	a := mustRandom(t, 4, 1)
	if a.Equal(nil, 0) {
		t.Error("Equal(nil) = true")
	}
	b := mustRandom(t, 4, 1)
	if !a.Equal(b, 0) {
		t.Error("identical seeds differ")
	}
	b.Data[3] += 1e-3
	if a.Equal(b, 1e-6) {
		t.Error("perturbation unnoticed")
	}
	if !a.Equal(b, 1e-2) {
		t.Error("eps not honoured")
	}
}

func TestNewRandomDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	_ = r
	a := mustRandom(t, 6, 99)
	b := mustRandom(t, 6, 99)
	if !a.Equal(b, 0) {
		t.Error("NewRandom not deterministic per seed")
	}
}
