package matrix

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The master/worker protocol of Fig C.2: for every result tile the
// master sends the matching row block of A and column block of B; the
// worker multiplies them and returns the tile. Frames are gob-encoded
// over the TCP sockets the Smart library handed back.

// task ships one tile's inputs to a worker.
type task struct {
	Block Block
	A     Matrix // (R1−R0)×N row block
	B     Matrix // N×(C1−C0) column block
}

// result returns one computed tile.
type result struct {
	Block Block
	C     Matrix
	Err   string
}

// Worker executes tiles for a master. SpeedFactor scales its compute
// speed: 1.0 is the testbed's fastest class (P4 2.4 GHz in Fig 5.2);
// 0.5 takes twice as long, emulating a slower CPU on shared hardware.
type Worker struct {
	// SpeedFactor in (0, 1]; 0 defaults to 1 (full speed).
	SpeedFactor float64
	// OpCost is the modeled compute time per million multiply-add
	// operations at SpeedFactor 1. When set, a tile costs
	// ops/1e6 × OpCost ÷ effective speed of wall time (the worker
	// sleeps out the remainder after the one real multiply), so many
	// workers sharing one physical CPU still exhibit the paper's
	// parallel timing: sleeps overlap, real compute is a small
	// correctness check. Zero falls back to stretching measured
	// compute time, which is only meaningful with dedicated cores.
	OpCost time.Duration
	// LoadFactor returns an additional slowdown in (0, 1] from
	// competing processes (SuperPI halves the CPU share a worker
	// gets). Nil means no competing load.
	LoadFactor func() float64
	// Sleep pauses the worker while it models compute time; nil means
	// time.Sleep. Injected so tests can run the timing model in
	// virtual time.
	Sleep func(time.Duration)
	// Name for diagnostics.
	Name string
}

// pause stretches wall time through the injected sleep.
func (w *Worker) pause(d time.Duration) {
	sleep := w.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	sleep(d)
}

// Serve accepts masters on ln until the context is cancelled. Each
// connection is one master session processing tasks sequentially —
// the thesis's worker loop.
func (w *Worker) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		// Accept below surfaces the close as net.ErrClosed.
		_ = ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("matrix: worker accept: %w", err)
		}
		go w.serveConn(ctx, conn)
	}
}

func (w *Worker) serveConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var t task
		if err := dec.Decode(&t); err != nil {
			return // master hung up or died
		}
		res := w.compute(&t)
		if err := enc.Encode(res); err != nil {
			return
		}
	}
}

// compute multiplies one tile, stretching wall time by the inverse
// of the effective speed (hardware class × competing load).
func (w *Worker) compute(t *task) *result {
	start := time.Now()
	c, err := MultiplyLocal(&t.A, &t.B)
	if err != nil {
		return &result{Block: t.Block, Err: err.Error()}
	}
	speed := w.SpeedFactor
	if speed <= 0 || speed > 1 {
		speed = 1
	}
	if w.LoadFactor != nil {
		if lf := w.LoadFactor(); lf > 0 && lf < 1 {
			speed *= lf
		}
	}
	elapsed := time.Since(start)
	if w.OpCost > 0 {
		ops := float64(t.A.Rows) * float64(t.A.Cols) * float64(t.B.Cols)
		modeled := time.Duration(ops / 1e6 * float64(w.OpCost) / speed)
		if extra := modeled - elapsed; extra > 0 {
			w.pause(extra)
		}
	} else if speed < 1 {
		w.pause(time.Duration(float64(elapsed) * (1/speed - 1)))
	}
	return &result{Block: t.Block, C: *c}
}

// Distribute multiplies a×b across the given worker connections with
// tile size blk. One goroutine per connection pulls tiles from a
// shared queue, so fast workers naturally take more tiles — the
// self-balancing property the thesis's master relies on.
func Distribute(ctx context.Context, a, b *Matrix, blk int, conns []net.Conn) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("matrix: %dx%d × %dx%d shapes do not chain", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows != a.Cols || b.Rows != b.Cols {
		return nil, fmt.Errorf("matrix: distributed mode multiplies square matrices, got %dx%d and %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if len(conns) == 0 {
		return nil, fmt.Errorf("matrix: no worker connections")
	}
	n := a.Rows
	blocks, err := Blocks(n, blk)
	if err != nil {
		return nil, err
	}
	c, err := NewMatrix(n, n)
	if err != nil {
		return nil, err
	}

	tasks := make(chan Block)
	results := make(chan *result, len(conns))
	errc := make(chan error, len(conns))
	var wg sync.WaitGroup

	for _, conn := range conns {
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			enc := gob.NewEncoder(conn)
			dec := gob.NewDecoder(conn)
			for blkDef := range tasks {
				arows, err := a.RowBlock(blkDef.R0, blkDef.R1)
				if err != nil {
					errc <- err
					return
				}
				bcols, err := b.ColBlock(blkDef.C0, blkDef.C1)
				if err != nil {
					errc <- err
					return
				}
				if err := enc.Encode(&task{Block: blkDef, A: *arows, B: *bcols}); err != nil {
					errc <- fmt.Errorf("matrix: send tile to worker: %w", err)
					return
				}
				var res result
				if err := dec.Decode(&res); err != nil {
					errc <- fmt.Errorf("matrix: receive tile from worker: %w", err)
					return
				}
				results <- &res
			}
		}(conn)
	}

	// Feed tasks; stop early if the context dies.
	go func() {
		defer close(tasks)
		for _, blkDef := range blocks {
			select {
			case tasks <- blkDef:
			case <-ctx.Done():
				return
			}
		}
	}()

	done := 0
	for done < len(blocks) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case err := <-errc:
			return nil, err
		case res := <-results:
			if res.Err != "" {
				return nil, fmt.Errorf("matrix: worker failed on tile %+v: %s", res.Block, res.Err)
			}
			if err := pasteBlock(c, res); err != nil {
				return nil, err
			}
			done++
		}
	}
	wg.Wait()
	return c, nil
}

// pasteBlock writes a returned tile into the result matrix.
func pasteBlock(c *Matrix, res *result) error {
	b := res.Block
	wantRows, wantCols := b.R1-b.R0, b.C1-b.C0
	if res.C.Rows != wantRows || res.C.Cols != wantCols {
		return fmt.Errorf("matrix: tile %+v came back %dx%d", b, res.C.Rows, res.C.Cols)
	}
	if b.R1 > c.Rows || b.C1 > c.Cols {
		return fmt.Errorf("matrix: tile %+v outside %dx%d result", b, c.Rows, c.Cols)
	}
	for i := 0; i < wantRows; i++ {
		copy(c.Data[(b.R0+i)*c.Cols+b.C0:(b.R0+i)*c.Cols+b.C1],
			res.C.Data[i*wantCols:(i+1)*wantCols])
	}
	return nil
}
