// Package secmon implements the security monitor of §3.4. Security
// scanning proper is out of the thesis's scope; the monitor reads
// per-host clearance levels from a security log and keeps the secdb
// section of the status database current, behind a pluggable Agent
// interface so that real scanners (nmap-style probes, registry
// scanners, Cisco-NAC-style trust agents) can be dropped in without
// touching the rest of the system.
package secmon

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"smartsock/internal/status"
	"smartsock/internal/store"
)

// Agent produces security reports. Implementations may scan the
// network, read logs, or consult third-party software (§3.4.2).
type Agent interface {
	Scan() ([]status.SecLevel, error)
}

// StaticAgent returns a fixed set of levels — useful for simulated
// testbeds and as the simplest possible third-party plug-in.
type StaticAgent []status.SecLevel

// Scan returns the configured levels.
func (a StaticAgent) Scan() ([]status.SecLevel, error) {
	out := make([]status.SecLevel, len(a))
	copy(out, a)
	return out, nil
}

// LogAgent reads the dummy security log format of §3.4.1: one
// "host level" pair per line, '#' comments allowed. The file is
// re-read on every scan so operators can edit it live.
type LogAgent struct {
	Path string
}

// Scan parses the security log.
func (a LogAgent) Scan() ([]status.SecLevel, error) {
	f, err := os.Open(a.Path)
	if err != nil {
		return nil, fmt.Errorf("secmon: %w", err)
	}
	defer f.Close()
	var out []status.SecLevel
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("secmon: %s:%d: want \"host level\", got %q", a.Path, lineNo, line)
		}
		level, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("secmon: %s:%d: bad level %q: %v", a.Path, lineNo, fields[1], err)
		}
		out = append(out, status.SecLevel{Host: fields[0], Level: level})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("secmon: %w", err)
	}
	return out, nil
}

// Config parameterises the security monitor.
type Config struct {
	// Agent supplies the reports.
	Agent Agent
	// DB receives them.
	DB *store.DB
	// Interval between scans. Defaults to 30 s — security levels
	// change far more slowly than load.
	Interval time.Duration
	// Logger receives scan failures; nil silences them.
	Logger *log.Logger
}

// Monitor keeps the secdb current.
type Monitor struct {
	cfg Config
}

// New validates the config and builds a monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.Agent == nil {
		return nil, fmt.Errorf("secmon: nil agent")
	}
	if cfg.DB == nil {
		return nil, fmt.Errorf("secmon: nil database")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	return &Monitor{cfg: cfg}, nil
}

// ScanOnce runs one scan-and-store cycle.
func (m *Monitor) ScanOnce() error {
	levels, err := m.cfg.Agent.Scan()
	if err != nil {
		return err
	}
	for _, l := range levels {
		m.cfg.DB.PutSec(l)
	}
	return nil
}

// Run scans at the configured interval until the context is
// cancelled. The first scan runs immediately.
func (m *Monitor) Run(ctx context.Context) error {
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		if err := m.ScanOnce(); err != nil {
			if m.cfg.Logger != nil {
				m.cfg.Logger.Printf("secmon: %v", err)
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
