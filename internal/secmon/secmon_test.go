package secmon

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"smartsock/internal/status"
	"smartsock/internal/store"
)

func writeLog(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "security.log")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLogAgentParsesThesisFormat(t *testing.T) {
	// §3.4.1: "The log file contains the server names and the
	// correspondingly security levels."
	path := writeLog(t, `# security clearance levels
sagit 5
dalmatian 4   # monitor machine
hacker.some.net -1

`)
	levels, err := LogAgent{Path: path}.Scan()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"sagit": 5, "dalmatian": 4, "hacker.some.net": -1}
	if len(levels) != len(want) {
		t.Fatalf("got %d levels, want %d", len(levels), len(want))
	}
	for _, l := range levels {
		if want[l.Host] != l.Level {
			t.Errorf("%s = %d, want %d", l.Host, l.Level, want[l.Host])
		}
	}
}

func TestLogAgentErrors(t *testing.T) {
	if _, err := (LogAgent{Path: "/nonexistent/sec.log"}).Scan(); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := (LogAgent{Path: writeLog(t, "host-without-level\n")}).Scan(); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := (LogAgent{Path: writeLog(t, "host notanumber\n")}).Scan(); err == nil {
		t.Error("non-numeric level accepted")
	}
}

func TestLogAgentRereadsOnEachScan(t *testing.T) {
	path := writeLog(t, "a 1\n")
	agent := LogAgent{Path: path}
	if levels, _ := agent.Scan(); len(levels) != 1 || levels[0].Level != 1 {
		t.Fatal("first scan wrong")
	}
	os.WriteFile(path, []byte("a 9\nb 2\n"), 0o644)
	levels, err := agent.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 || levels[0].Level != 9 {
		t.Errorf("live edit not picked up: %+v", levels)
	}
}

func TestMonitorScanOnce(t *testing.T) {
	db := store.New()
	m, err := New(Config{
		Agent: StaticAgent{{Host: "h1", Level: 3}, {Host: "h2", Level: 1}},
		DB:    db,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ScanOnce(); err != nil {
		t.Fatal(err)
	}
	r, ok := db.GetSec("h1")
	if !ok || r.Level.Level != 3 {
		t.Errorf("GetSec(h1) = %+v (%v)", r, ok)
	}
}

func TestMonitorRun(t *testing.T) {
	db := store.New()
	m, err := New(Config{
		Agent:    StaticAgent{{Host: "h", Level: 2}},
		DB:       db,
		Interval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	m.Run(ctx)
	if _, ok := db.GetSec("h"); !ok {
		t.Error("Run never scanned")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{DB: store.New()}); err == nil {
		t.Error("accepted nil agent")
	}
	if _, err := New(Config{Agent: StaticAgent{}}); err == nil {
		t.Error("accepted nil db")
	}
}

func TestStaticAgentCopies(t *testing.T) {
	a := StaticAgent{{Host: "x", Level: 1}}
	got, _ := a.Scan()
	got[0].Level = 99
	again, _ := a.Scan()
	if again[0].Level != 1 {
		t.Error("Scan aliases the agent's backing slice")
	}
	var _ Agent = a
	var _ Agent = LogAgent{}
	var _ = []status.SecLevel(a)
}
