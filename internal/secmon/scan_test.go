package secmon

import (
	"fmt"
	"net"
	"testing"
)

// listenOn opens a real TCP listener on an ephemeral loopback port
// and returns the port.
func listenOn(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	return ln.Addr().(*net.TCPAddr).Port
}

func TestScanAgentCleanHostKeepsBaseLevel(t *testing.T) {
	port := listenOn(t) // a benign service (e.g. our own worker port)
	agent := ScanAgent{
		Targets:   []string{fmt.Sprintf("127.0.0.1/%d", port)},
		BaseLevel: 5,
	}
	levels, err := agent.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 1 || levels[0].Level != 5 {
		t.Errorf("levels = %+v, want base 5", levels)
	}
}

func TestScanAgentPenalisesRiskyPorts(t *testing.T) {
	risky := listenOn(t)
	benign := listenOn(t)
	agent := ScanAgent{
		Targets:    []string{fmt.Sprintf("127.0.0.1/%d,%d", risky, benign)},
		BaseLevel:  5,
		RiskyPorts: map[int]int{risky: 3},
	}
	res, err := agent.ScanDetailed()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %+v", res)
	}
	if !res[0].Reachable || res[0].Level != 2 {
		t.Errorf("result = %+v, want reachable level 2 (5−3)", res[0])
	}
	if len(res[0].OpenPorts) != 2 {
		t.Errorf("OpenPorts = %v, want both", res[0].OpenPorts)
	}
}

func TestScanAgentDownHost(t *testing.T) {
	agent := ScanAgent{
		Targets:   []string{"127.0.0.1/1"}, // reserved port, nothing listens
		BaseLevel: 5,
		DownLevel: -1,
	}
	res, err := agent.ScanDetailed()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Reachable || res[0].Level != -1 {
		t.Errorf("down host result = %+v", res[0])
	}
}

func TestScanAgentMultipleTargets(t *testing.T) {
	p1 := listenOn(t)
	p2 := listenOn(t)
	agent := ScanAgent{
		Targets: []string{
			fmt.Sprintf("127.0.0.1/%d", p1),
			fmt.Sprintf("127.0.0.1/%d", p2),
			"127.0.0.1/1",
		},
	}
	levels, err := agent.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("got %d levels, want 3", len(levels))
	}
	if levels[0].Level != 5 || levels[1].Level != 5 || levels[2].Level != 0 {
		t.Errorf("levels = %+v", levels)
	}
}

func TestScanAgentBadTargets(t *testing.T) {
	for _, target := range []string{"", "/22", "host/notaport", "host/0", "host/99999"} {
		agent := ScanAgent{Targets: []string{target}}
		if _, err := agent.Scan(); err == nil {
			t.Errorf("target %q accepted", target)
		}
	}
}

func TestScanAgentHostWithPortSuffix(t *testing.T) {
	// Targets named as service addresses keep their full name in the
	// record but scan the host part.
	port := listenOn(t)
	name := fmt.Sprintf("127.0.0.1:9999/%d", port)
	agent := ScanAgent{Targets: []string{name}}
	levels, err := agent.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if levels[0].Host != "127.0.0.1:9999" {
		t.Errorf("record host = %q", levels[0].Host)
	}
	if levels[0].Level != 5 {
		t.Errorf("level = %d", levels[0].Level)
	}
}

func TestScanAgentPlugsIntoMonitor(t *testing.T) {
	// The §3.4.1 open framework: a scanning agent drops in wherever
	// the log agent does.
	var _ Agent = ScanAgent{}
}
