package secmon

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"smartsock/internal/status"
)

// ScanAgent is an nmap-style network scanning agent (§3.4.2): it
// probes each host's service ports with TCP connect scans and derives
// a clearance level from what it finds, the way the thesis's
// fingerprint databases map observed services to risk. Unlike the
// real nmap's half-open SYN probes it uses full connects, which need
// no raw sockets and are observable by the target — acceptable for a
// cooperative computing pool.
//
// The derived level starts at BaseLevel and drops by the penalty of
// every open port found in RiskyPorts; hosts exposing nothing risky
// keep their base clearance. Hosts where no probed port answers at
// all report DownLevel, so requirements like
// "host_security_level >= 3" screen them out.
type ScanAgent struct {
	// Targets are the hosts to scan. An entry may carry an explicit
	// port list after '/': "fileserver/22,80". Entries without one
	// use Ports.
	Targets []string
	// Ports probed on targets without their own list. Defaults to a
	// classic short list (ftp, ssh, telnet, finger, http, portmap,
	// the r-services).
	Ports []int
	// RiskyPorts maps an open port to its clearance penalty.
	// Defaults to penalising legacy cleartext services.
	RiskyPorts map[int]int
	// BaseLevel is a clean, reachable host's clearance. Defaults to 5.
	BaseLevel int
	// DownLevel is reported for unreachable hosts. Defaults to 0.
	DownLevel int
	// DialTimeout per port probe. Defaults to 300 ms.
	DialTimeout time.Duration
	// Parallel bounds concurrent port probes. Defaults to 8.
	Parallel int
}

// defaultRiskyPorts penalises the classic cleartext and legacy
// services a 2004-era scanner would flag.
func defaultRiskyPorts() map[int]int {
	return map[int]int{
		23:  3, // telnet
		512: 2, // rexec
		513: 2, // rlogin
		514: 2, // rsh
		21:  1, // ftp
		79:  1, // finger
		111: 1, // portmap
	}
}

var defaultScanPorts = []int{21, 22, 23, 79, 80, 111, 512, 513, 514}

// target is one parsed Targets entry.
type target struct {
	host  string
	ports []int
}

func (a *ScanAgent) parseTargets() ([]target, error) {
	base := a.Ports
	if len(base) == 0 {
		base = defaultScanPorts
	}
	out := make([]target, 0, len(a.Targets))
	for _, raw := range a.Targets {
		host, portSpec, hasSpec := strings.Cut(raw, "/")
		if host == "" {
			return nil, fmt.Errorf("secmon: empty scan target %q", raw)
		}
		t := target{host: host, ports: base}
		if hasSpec {
			var ports []int
			for _, p := range strings.Split(portSpec, ",") {
				var v int
				if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v); err != nil || v <= 0 || v > 65535 {
					return nil, fmt.Errorf("secmon: bad port %q in target %q", p, raw)
				}
				ports = append(ports, v)
			}
			t.ports = ports
		}
		out = append(out, t)
	}
	return out, nil
}

// ScanResult is one host's detailed scan outcome, for operators who
// want more than the level.
type ScanResult struct {
	Host      string
	OpenPorts []int
	Level     int
	Reachable bool
}

// ScanDetailed probes every target and returns full results.
func (a ScanAgent) ScanDetailed() ([]ScanResult, error) {
	targets, err := a.parseTargets()
	if err != nil {
		return nil, err
	}
	base := a.BaseLevel
	if base == 0 {
		base = 5
	}
	risky := a.RiskyPorts
	if risky == nil {
		risky = defaultRiskyPorts()
	}
	timeout := a.DialTimeout
	if timeout <= 0 {
		timeout = 300 * time.Millisecond
	}
	parallel := a.Parallel
	if parallel <= 0 {
		parallel = 8
	}

	results := make([]ScanResult, len(targets))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t target) {
			defer wg.Done()
			res := ScanResult{Host: t.host}
			for _, port := range t.ports {
				sem <- struct{}{}
				conn, err := net.DialTimeout("tcp", net.JoinHostPort(hostOnly(t.host), fmt.Sprint(port)), timeout)
				<-sem
				if err != nil {
					continue
				}
				// Only reachability matters to the scan.
				_ = conn.Close()
				res.OpenPorts = append(res.OpenPorts, port)
			}
			sort.Ints(res.OpenPorts)
			res.Reachable = len(res.OpenPorts) > 0
			if !res.Reachable {
				res.Level = a.DownLevel
			} else {
				level := base
				for _, p := range res.OpenPorts {
					level -= risky[p]
				}
				res.Level = level
			}
			results[i] = res
		}(i, t)
	}
	wg.Wait()
	return results, nil
}

// Scan implements Agent: levels only, for the security monitor.
func (a ScanAgent) Scan() ([]status.SecLevel, error) {
	detailed, err := a.ScanDetailed()
	if err != nil {
		return nil, err
	}
	out := make([]status.SecLevel, len(detailed))
	for i, r := range detailed {
		out[i] = status.SecLevel{Host: r.Host, Level: r.Level}
	}
	return out, nil
}

// hostOnly strips a :port suffix if the target name itself is a
// service address.
func hostOnly(s string) string {
	host, _, err := net.SplitHostPort(s)
	if err != nil {
		return s
	}
	return host
}
