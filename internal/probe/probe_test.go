package probe

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"smartsock/internal/status"
	"smartsock/internal/sysinfo"
)

// udpSink captures datagrams sent to it.
func udpSink(t *testing.T) (*net.UDPConn, chan []byte) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	ch := make(chan []byte, 64)
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				close(ch)
				return
			}
			msg := make([]byte, n)
			copy(msg, buf[:n])
			ch <- msg
		}
	}()
	return conn, ch
}

func recvReport(t *testing.T, ch chan []byte) *status.ServerStatus {
	t.Helper()
	select {
	case msg := <-ch:
		s, err := status.DecodeReport(msg)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return s
	case <-time.After(2 * time.Second):
		t.Fatal("no report arrived")
		return nil
	}
}

func TestReportOnceSendsDecodableReport(t *testing.T) {
	sink, ch := udpSink(t)
	p, err := New(Config{
		Source:  sysinfo.NewSynthetic(sysinfo.Idle("probe-test", 2500, 256)),
		Monitor: sink.LocalAddr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReportOnce(); err != nil {
		t.Fatal(err)
	}
	s := recvReport(t, ch)
	if s.Host != "probe-test" || s.Bogomips != 2500 {
		t.Errorf("report = %+v", s)
	}
	if p.Reports() != 1 {
		t.Errorf("Reports = %d", p.Reports())
	}
}

func TestRunReportsPeriodicallyAndStops(t *testing.T) {
	sink, ch := udpSink(t)
	p, err := New(Config{
		Source:   sysinfo.NewSynthetic(sysinfo.Idle("ticker", 1000, 128)),
		Monitor:  sink.LocalAddr().String(),
		Interval: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()

	// First report goes out immediately; more follow.
	recvReport(t, ch)
	recvReport(t, ch)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func TestFieldMaskZeroesUnselectedGroups(t *testing.T) {
	sink, ch := udpSink(t)
	src := sysinfo.NewSynthetic(sysinfo.Idle("masked", 1234, 128))
	src.Update(func(s *status.ServerStatus) {
		s.DiskRReq = 42
		s.NetTBytesPS = 999
	})
	p, err := New(Config{Source: src, Monitor: sink.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	p.SetFields(FieldCPU | FieldMemory)
	if err := p.ReportOnce(); err != nil {
		t.Fatal(err)
	}
	s := recvReport(t, ch)
	if s.DiskRReq != 0 || s.NetTBytesPS != 0 || s.Load1 != 0 {
		t.Errorf("masked groups leaked: %+v", s)
	}
	if s.CPUIdle == 0 || s.MemTotal == 0 {
		t.Error("selected groups were zeroed")
	}
	// Zero mask resets to everything (Ch. 6 default).
	p.SetFields(0)
	if err := p.ReportOnce(); err != nil {
		t.Fatal(err)
	}
	s = recvReport(t, ch)
	if s.DiskRReq != 42 {
		t.Errorf("FieldAll fallback not applied: %+v", s)
	}
}

func TestReportOnceSourceError(t *testing.T) {
	sink, _ := udpSink(t)
	p, err := New(Config{
		Source:  failingSource{},
		Monitor: sink.LocalAddr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReportOnce(); err == nil {
		t.Error("source error swallowed")
	}
	if p.Reports() != 0 {
		t.Error("failed scan counted as a report")
	}
}

type failingSource struct{}

func (failingSource) Snapshot() (status.ServerStatus, error) {
	return status.ServerStatus{}, errors.New("synthetic failure")
}

func TestTCPTransportRefusedConnection(t *testing.T) {
	p, err := New(Config{
		Source:    sysinfo.NewSynthetic(sysinfo.Idle("x", 1, 1)),
		Monitor:   "127.0.0.1:1", // nothing listens
		Transport: TCP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReportOnce(); err == nil {
		t.Error("TCP report to a dead monitor succeeded")
	}
}

func TestTransportString(t *testing.T) {
	if UDP.String() != "udp" || TCP.String() != "tcp" {
		t.Error("Transport.String misbehaves")
	}
}

func TestDefaultInterval(t *testing.T) {
	p, err := New(Config{
		Source:  sysinfo.NewSynthetic(sysinfo.Idle("x", 1, 1)),
		Monitor: "127.0.0.1:1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.cfg.Interval != 5*time.Second {
		t.Errorf("default interval = %v, thesis default is 5 s", p.cfg.Interval)
	}
}
