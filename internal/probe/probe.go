// Package probe implements the server probe of §3.2.1: a small agent
// running on every server that periodically scans the system status
// source and reports it to the system monitor.
//
// Reports travel over UDP by default — the monitor sits in the local
// network, losses are rare and the overhead matters more than
// reliability (§3.2.1). The Chapter 6 extension is also implemented:
// a probe can be switched to TCP for long reports on congested
// networks, and it honours a "selected parameters" mask so only the
// fields an application cares about are measured and shipped.
package probe

import (
	"context"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smartsock/internal/retry"
	"smartsock/internal/status"
	"smartsock/internal/sysinfo"
)

// Transport selects the report protocol.
type Transport int

const (
	// UDP sends each report as one datagram (default, §3.2.1).
	UDP Transport = iota
	// TCP opens a short-lived connection per report (Ch. 6: for long
	// reports on lossy networks).
	TCP
)

func (t Transport) String() string {
	if t == TCP {
		return "tcp"
	}
	return "udp"
}

// FieldMask names the parameter groups a probe reports. The zero mask
// means "everything" (the thesis default); the wizard can narrow it
// to cut measurement and bandwidth cost (Ch. 6).
type FieldMask uint8

const (
	FieldLoad FieldMask = 1 << iota
	FieldCPU
	FieldMemory
	FieldDisk
	FieldNetwork

	// FieldAll reports every parameter group.
	FieldAll = FieldLoad | FieldCPU | FieldMemory | FieldDisk | FieldNetwork
)

// Config parameterises a probe.
type Config struct {
	// Source supplies status snapshots (live /proc or synthetic).
	Source sysinfo.Source
	// Monitor is the system monitor's report address, host:port.
	Monitor string
	// Interval between scans; the thesis runs 2–10 s. Defaults to 5 s.
	Interval time.Duration
	// Transport is UDP (default) or TCP.
	Transport Transport
	// Dial opens the report socket; nil means net.Dial. The chaos
	// layer injects lossy or partitioned wrappers here.
	Dial func(network, addr string) (net.Conn, error)
	// Logger receives scan errors; nil silences them.
	Logger *log.Logger
}

// Probe periodically reports server status to a system monitor.
type Probe struct {
	cfg     Config
	mask    atomic.Uint32 // FieldMask; mutable at runtime
	reports atomic.Uint64 // reports successfully sent

	connMu sync.Mutex
	conn   net.Conn // persistent UDP socket; control replies arrive here
	closed bool
}

// New validates the config and builds a probe.
func New(cfg Config) (*Probe, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("probe: nil status source")
	}
	if cfg.Monitor == "" {
		return nil, fmt.Errorf("probe: empty monitor address")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	p := &Probe{cfg: cfg}
	p.mask.Store(uint32(FieldAll))
	return p, nil
}

// SetFields narrows (or widens) the reported parameter groups.
func (p *Probe) SetFields(m FieldMask) {
	if m == 0 {
		m = FieldAll
	}
	p.mask.Store(uint32(m))
}

// Reports returns the number of reports sent so far.
func (p *Probe) Reports() uint64 { return p.reports.Load() }

// Close releases the probe's report socket and stops its control
// listener. Run closes automatically; call Close only when driving
// ReportOnce by hand.
func (p *Probe) Close() error {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	p.closed = true
	if p.conn != nil {
		err := p.conn.Close()
		p.conn = nil
		return err
	}
	return nil
}

// Run scans and reports until the context is cancelled. The first
// report goes out immediately so a freshly started server enters the
// pool without waiting a full interval. Consecutive failures back the
// report cadence off exponentially (bounded, jittered) so a dead or
// unreachable monitor is not hammered at full rate; the first success
// re-registers the probe and restores the normal interval.
func (p *Probe) Run(ctx context.Context) error {
	defer p.Close()
	bo := &retry.Backoff{Base: p.cfg.Interval, Max: 8 * p.cfg.Interval}
	timer := time.NewTimer(p.cfg.Interval)
	defer timer.Stop()
	for {
		wait := p.cfg.Interval
		if err := p.ReportOnce(); err != nil {
			p.logf("probe: %v", err)
			wait = bo.Next()
		} else {
			bo.Reset()
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// ReportOnce performs a single scan-and-send cycle.
func (p *Probe) ReportOnce() error {
	snap, err := p.cfg.Source.Snapshot()
	if err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	applyMask(&snap, FieldMask(p.mask.Load()))
	msg := status.EncodeReport(&snap)
	if err := p.send(msg); err != nil {
		return err
	}
	p.reports.Add(1)
	return nil
}

func (p *Probe) send(msg []byte) error {
	switch p.cfg.Transport {
	case TCP:
		conn, err := p.dial("tcp", p.cfg.Monitor)
		if err != nil {
			return fmt.Errorf("dial monitor: %w", err)
		}
		defer conn.Close()
		err = status.WriteFrame(conn, status.Frame{Type: status.TypeSystem, Data: msg})
		if err != nil {
			return fmt.Errorf("send report: %w", err)
		}
		return nil
	default:
		conn, err := p.udpConn()
		if err != nil {
			return fmt.Errorf("dial monitor: %w", err)
		}
		if _, err := conn.Write(msg); err != nil {
			// A broken socket is replaced on the next report.
			p.connMu.Lock()
			if p.conn == conn {
				// Already failing; the close error adds nothing.
				_ = p.conn.Close()
				p.conn = nil
			}
			p.connMu.Unlock()
			return fmt.Errorf("send report: %w", err)
		}
		return nil
	}
}

// udpConn lazily opens the probe's persistent report socket and
// starts the control listener on it. Keeping one socket per probe
// lets the monitor's selected-parameters replies (Ch. 6) arrive
// asynchronously, without delaying reports. The dial happens outside
// the mutex — a slow resolver must not block Close — with a re-check
// after reacquiring it; a racing dial loses and closes its socket.
func (p *Probe) udpConn() (net.Conn, error) {
	p.connMu.Lock()
	if p.closed {
		p.connMu.Unlock()
		return nil, fmt.Errorf("probe is closed")
	}
	if p.conn != nil {
		conn := p.conn
		p.connMu.Unlock()
		return conn, nil
	}
	p.connMu.Unlock()

	conn, err := p.dial("udp", p.cfg.Monitor)
	if err != nil {
		return nil, err
	}
	p.connMu.Lock()
	defer p.connMu.Unlock()
	if p.closed {
		_ = conn.Close()
		return nil, fmt.Errorf("probe is closed")
	}
	if p.conn != nil {
		// Another report dialed first; keep the established socket.
		_ = conn.Close()
		return p.conn, nil
	}
	p.conn = conn
	//lint:ignore leakygo controlLoop's lifetime is owned by the socket: Probe.Close closes p.conn, which ends the read loop
	go p.controlLoop(conn)
	return conn, nil
}

// dial opens the report socket through the configured hook, defaulting
// to net.Dial with a short timeout for TCP.
func (p *Probe) dial(network, addr string) (net.Conn, error) {
	if p.cfg.Dial != nil {
		return p.cfg.Dial(network, addr)
	}
	if network == "tcp" {
		return net.DialTimeout(network, addr, 2*time.Second)
	}
	return net.Dial(network, addr)
}

// controlLoop applies selected-parameters instructions as they
// arrive; it exits when the socket is replaced or closed.
func (p *Probe) controlLoop(conn net.Conn) {
	buf := make([]byte, 256)
	for {
		// Control replies may arrive at any time over the socket's whole
		// life; Probe.Close ends the loop by closing the socket.
		//lint:ignore deadline socket lifetime is owned by Probe.Close, a read deadline would drop control replies
		n, err := conn.Read(buf)
		if err != nil {
			return
		}
		mask, err := status.DecodeControl(buf[:n])
		if err != nil {
			p.logf("probe: ignoring stray datagram on report socket: %v", err)
			continue
		}
		p.SetFields(FieldMask(mask))
	}
}

// MaskForVariables derives the narrowest field mask that still
// measures every named server-side variable — the bridge from the
// wizard's requirement-variable statistics to probe instructions.
// Unknown variables (including the wizard-side monitor_* and
// host_security_level names) select no probe group; an empty result
// set falls back to FieldAll at SetFields time.
func MaskForVariables(vars []string) FieldMask {
	var m FieldMask
	for _, v := range vars {
		switch {
		case strings.HasPrefix(v, "host_system_load"):
			m |= FieldLoad
		case strings.HasPrefix(v, "host_cpu"):
			m |= FieldCPU
		case strings.HasPrefix(v, "host_memory"):
			m |= FieldMemory
		case strings.HasPrefix(v, "host_disk"):
			m |= FieldDisk
		case strings.HasPrefix(v, "host_network"):
			m |= FieldNetwork
		}
	}
	return m
}

// applyMask zeroes the parameter groups outside the mask so unreported
// values cannot be mistaken for measurements.
func applyMask(s *status.ServerStatus, m FieldMask) {
	if m&FieldLoad == 0 {
		s.Load1, s.Load5, s.Load15 = 0, 0, 0
	}
	if m&FieldCPU == 0 {
		s.CPUUser, s.CPUNice, s.CPUSystem, s.CPUIdle = 0, 0, 0, 0
	}
	if m&FieldMemory == 0 {
		s.MemTotal, s.MemUsed, s.MemFree = 0, 0, 0
	}
	if m&FieldDisk == 0 {
		s.DiskAllReq, s.DiskRReq, s.DiskRBlocks, s.DiskWReq, s.DiskWBlocks = 0, 0, 0, 0, 0
	}
	if m&FieldNetwork == 0 {
		s.NetIface = ""
		s.NetRBytesPS, s.NetRPacketsPS, s.NetTBytesPS, s.NetTPacketsPS = 0, 0, 0, 0
	}
}

func (p *Probe) logf(format string, args ...any) {
	if p.cfg.Logger != nil {
		p.cfg.Logger.Printf(format, args...)
	}
}
