package smartsock

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"smartsock/internal/retry"
)

// ReliableConn is the Chapter 6 fault-tolerance hook: a connection
// that can be suspended and resumed, in the spirit of the rsocks
// reliable-sockets work the thesis cites. Suspend parks the
// connection (closing the underlying socket); Resume redials the same
// server. Writes made while a connection is broken redial
// transparently, up to a retry budget.
//
// Transparent *stream* recovery — replaying bytes the peer never saw
// — needs cooperation from both ends and is out of scope here, as it
// was for the thesis ("the checkpoint function, and the recovery
// procedure should be accomplished in the upper level"). ReliableConn
// therefore suits request/reply protocols where the application
// re-issues the in-flight request after a reconnect; both sample
// applications (matrix tiles, massd blocks) have that shape.
type ReliableConn struct {
	mu        sync.Mutex
	conn      net.Conn
	addr      string
	dial      func(ctx context.Context, addr string) (net.Conn, error)
	suspended bool
	closed    bool
	redials   int
	// MaxRedials bounds automatic reconnects per operation (default 1).
	maxRedials int
	// backoff spaces consecutive redials of one Write so a crashed
	// server is not redialed in a tight loop.
	backoff retry.Backoff
	// sleep is time.Sleep, injectable for tests.
	sleep func(time.Duration)
}

// SetMaxRedials changes the automatic reconnect budget per operation.
// Values below zero disable auto-reconnect entirely — a broken socket
// then fails the Write and the application decides. The default is 1.
func (r *ReliableConn) SetMaxRedials(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxRedials = n
}

// Reliable wraps the i-th socket of the set with suspend/resume and
// write-side auto-reconnect. The SocketSet keeps no further ownership
// of that slot; close the ReliableConn instead.
func (s *SocketSet) Reliable(i int) (*ReliableConn, error) {
	if i < 0 || i >= len(s.conns) {
		return nil, fmt.Errorf("smartsock: no socket %d in set of %d", i, len(s.conns))
	}
	return &ReliableConn{
		conn:       s.conns[i],
		addr:       s.addrs[i],
		dial:       s.dial,
		maxRedials: 1,
	}, nil
}

// NewReliableConn wraps an existing connection to addr using the
// standard dialer for reconnects.
func NewReliableConn(conn net.Conn, addr string, dialTimeout time.Duration) *ReliableConn {
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	return &ReliableConn{
		conn: conn,
		addr: addr,
		dial: func(ctx context.Context, a string) (net.Conn, error) {
			d := net.Dialer{Timeout: dialTimeout}
			return d.DialContext(ctx, "tcp", a)
		},
		maxRedials: 1,
	}
}

// Addr returns the server address this connection belongs to.
func (r *ReliableConn) Addr() string { return r.addr }

// Redials reports how many automatic reconnects have happened.
func (r *ReliableConn) Redials() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.redials
}

// Suspend parks the connection: the socket is closed but the server
// address is kept so Resume can re-establish it — the first half of
// the process-migration hook of Chapter 6.
func (r *ReliableConn) Suspend() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.suspended {
		return nil
	}
	r.suspended = true
	if r.conn != nil {
		err := r.conn.Close()
		r.conn = nil
		return err
	}
	return nil
}

// Resume re-establishes a suspended (or broken) connection.
func (r *ReliableConn) Resume(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reconnectLocked(ctx)
}

func (r *ReliableConn) reconnectLocked(ctx context.Context) error {
	if r.closed {
		return fmt.Errorf("smartsock: connection to %s is closed", r.addr)
	}
	if r.conn != nil {
		// The old socket is being replaced; its close error carries no
		// information the reconnect result doesn't.
		_ = r.conn.Close()
		r.conn = nil
	}
	conn, err := r.dial(ctx, r.addr)
	if err != nil {
		return fmt.Errorf("smartsock: resume %s: %w", r.addr, err)
	}
	r.conn = conn
	r.suspended = false
	r.redials++
	return nil
}

// Suspended reports whether the connection is parked.
func (r *ReliableConn) Suspended() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.suspended
}

// Write sends data, transparently redialing if the socket is broken
// or was never resumed, up to the SetMaxRedials budget with bounded
// exponential backoff between attempts. The caller's protocol must
// tolerate the peer seeing a fresh connection (re-issue the current
// request). The mutex guards only the connection swap, never the
// write or the backoff wait, so a stalled peer cannot wedge
// Suspend/Resume/Close; concurrent writers serialise on the socket as
// they would on a plain net.Conn.
func (r *ReliableConn) Write(p []byte) (int, error) {
	r.mu.Lock()
	r.backoff.Reset()
	r.mu.Unlock()
	for attempt := 0; ; attempt++ {
		r.mu.Lock()
		if attempt > 0 {
			wait := r.backoff.Next()
			pause := r.sleep
			if pause == nil {
				pause = time.Sleep
			}
			r.mu.Unlock()
			pause(wait)
			r.mu.Lock()
		}
		if r.conn == nil || r.suspended {
			if err := r.reconnectLocked(context.Background()); err != nil {
				r.mu.Unlock()
				return 0, err
			}
		}
		conn := r.conn
		budget := r.maxRedials
		r.mu.Unlock()

		n, err := conn.Write(p)
		if err == nil {
			return n, nil
		}
		if attempt >= budget {
			return n, err
		}
		r.mu.Lock()
		if r.conn == conn {
			// The error already told us the socket is broken.
			_ = conn.Close()
			r.conn = nil
		}
		r.mu.Unlock()
	}
}

// Read reads from the live connection. A read on a suspended
// connection resumes it first; read errors are returned as-is because
// silently reconnecting mid-stream would lose the peer's position.
func (r *ReliableConn) Read(p []byte) (int, error) {
	r.mu.Lock()
	if r.conn == nil || r.suspended {
		if err := r.reconnectLocked(context.Background()); err != nil {
			r.mu.Unlock()
			return 0, err
		}
	}
	conn := r.conn
	r.mu.Unlock()
	//lint:ignore deadline transparent wrapper: deadlines are the caller's, set through SetDeadline
	return conn.Read(p)
}

// Close shuts the connection down for good; no operation reconnects
// after it.
func (r *ReliableConn) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.suspended = true
	r.closed = true
	if r.conn == nil {
		return nil
	}
	err := r.conn.Close()
	r.conn = nil
	return err
}

// SetDeadline forwards to the live connection, if any.
func (r *ReliableConn) SetDeadline(t time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return fmt.Errorf("smartsock: connection suspended")
	}
	return r.conn.SetDeadline(t)
}
