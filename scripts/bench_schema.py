#!/usr/bin/env python3
"""Assert the committed BENCH_*.json files keep their schema.

bench.sh regenerates these files; CI and downstream docs
(EXPERIMENTS.md) read them by key. A bench rename or a parser
regression silently dropping a metric would otherwise go unnoticed
until someone quotes a number that no longer exists, so this script
fails loudly when a required key or metric is missing.

Usage: scripts/bench_schema.py [file ...]   (default: both BENCH files)
"""

import json
import sys

# file -> {benchmark key -> required metric fields}, plus required
# top-level sections.
SCHEMAS = {
    "BENCH_wizard.json": {
        "sections": ["benchmarks", "seed_baseline"],
        "benchmarks": {
            "WizardAnswer/cached": ["ns_per_op", "allocs_per_op"],
            "WizardAnswer/uncached": ["ns_per_op", "allocs_per_op"],
            "WizardStorm/seq-uncached": ["qps"],
            "WizardStorm/workers8-cached": ["qps"],
            "Select": ["ns_per_op", "allocs_per_op"],
            "SelectMemoized": ["ns_per_op"],
        },
    },
    "BENCH_transport.json": {
        "sections": ["benchmarks", "reduction"],
        "benchmarks": {
            "TransportEpoch/full-1000h": ["ns_per_op", "bytes_per_epoch", "allocs_per_op"],
            "TransportEpoch/delta-idle-1000h": ["ns_per_op", "bytes_per_epoch", "allocs_per_op"],
            "TransportEpoch/delta-refresh-1000h": ["ns_per_op", "bytes_per_epoch", "allocs_per_op"],
            "TransportEpoch/delta-1pct-1000h": ["ns_per_op", "bytes_per_epoch", "allocs_per_op"],
        },
        "reduction": [
            "bytes_idle_vs_full",
            "bytes_refresh_vs_full",
            "allocs_idle_vs_full",
            "allocs_refresh_vs_full",
        ],
    },
}


def check(path):
    name = path.rsplit("/", 1)[-1]
    schema = SCHEMAS.get(name)
    if schema is None:
        return [f"{path}: no schema registered (add one to bench_schema.py)"]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"{path}: {e}"]
    errs = []
    for section in schema["sections"]:
        if section not in doc:
            errs.append(f"{name}: missing section {section!r}")
    for bench, fields in schema["benchmarks"].items():
        row = doc.get("benchmarks", {}).get(bench)
        if row is None:
            errs.append(f"{name}: missing benchmark {bench!r}")
            continue
        for field in fields:
            if field not in row:
                errs.append(f"{name}: {bench} lacks {field!r}")
    for field in schema.get("reduction", []):
        if field not in doc.get("reduction", {}):
            errs.append(f"{name}: reduction lacks {field!r}")
    return errs


def main():
    files = sys.argv[1:] or list(SCHEMAS)
    errors = []
    for path in files:
        errors += check(path)
    for e in errors:
        print("bench_schema:", e, file=sys.stderr)
    if errors:
        sys.exit(1)
    print(f"bench_schema: {', '.join(f.rsplit('/', 1)[-1] for f in files)} ok")


if __name__ == "__main__":
    main()
