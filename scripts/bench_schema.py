#!/usr/bin/env python3
"""Assert the committed BENCH_*.json files keep their schema.

bench.sh regenerates these files; CI and downstream docs
(EXPERIMENTS.md) read them by key. A bench rename or a parser
regression silently dropping a metric would otherwise go unnoticed
until someone quotes a number that no longer exists, so this script
fails loudly when a required key or metric is missing.

Usage: scripts/bench_schema.py [file ...]   (default: both BENCH files)
"""

import json
import sys

# file -> {benchmark key -> required metric fields}, plus required
# top-level sections.
SCHEMAS = {
    "BENCH_wizard.json": {
        "sections": ["benchmarks", "seed_baseline", "speedup"],
        "benchmarks": {
            "WizardAnswer/cached": ["ns_per_op", "allocs_per_op"],
            "WizardAnswer/uncached": ["ns_per_op", "allocs_per_op"],
            "WizardStorm/seq-uncached": ["qps"],
            "WizardStorm/seq-cached": ["qps"],
            "WizardStorm/workers8-cached": ["qps"],
            "WizardStorm/shards8-batched": ["qps"],
            "Select": ["ns_per_op", "allocs_per_op"],
            "SelectMemoized": ["ns_per_op"],
        },
        # Datagram-plane acceptance bounds (best-of-three runs, see
        # bench.sh): the windowed batched/sharded storm must beat the
        # sequential cached loop with margin, and the 8-worker
        # configuration must never regress below it again (it used to,
        # when ping-pong clients starved the REUSEPORT shards).
        "ratio_section": "speedup",
        "ratios": [
            "storm_sharded_vs_seq",
            "storm_workers8_vs_seq",
        ],
        "ratio_bounds": {
            "storm_sharded_vs_seq": (1.25, None),
            "storm_workers8_vs_seq": (1.0, None),
        },
    },
    "BENCH_transport.json": {
        "sections": ["benchmarks", "reduction"],
        "benchmarks": {
            "TransportEpoch/full-1000h": ["ns_per_op", "bytes_per_epoch", "allocs_per_op"],
            "TransportEpoch/delta-idle-1000h": ["ns_per_op", "bytes_per_epoch", "allocs_per_op"],
            "TransportEpoch/delta-refresh-1000h": ["ns_per_op", "bytes_per_epoch", "allocs_per_op"],
            "TransportEpoch/delta-1pct-1000h": ["ns_per_op", "bytes_per_epoch", "allocs_per_op"],
        },
        "reduction": [
            "bytes_idle_vs_full",
            "bytes_refresh_vs_full",
            "allocs_idle_vs_full",
            "allocs_refresh_vs_full",
        ],
    },
    "BENCH_select.json": {
        "sections": ["benchmarks", "reduction"],
        "benchmarks": {
            "SelectScale/100k/selective/scan": ["ns_per_op", "evals_per_op"],
            "SelectScale/100k/selective/plan": ["ns_per_op", "evals_per_op"],
            "SelectScale/100k/broad/scan": ["ns_per_op", "evals_per_op"],
            "SelectScale/100k/broad/plan": ["ns_per_op", "evals_per_op"],
            "SelectScale/100k/unindexable/scan": ["ns_per_op"],
            "SelectScale/100k/unindexable/plan": ["ns_per_op"],
        },
        "reduction": [
            "evals_selective_100k_vs_scan",
            "ns_selective_100k_vs_scan",
            "unindexable_ns_overhead_100k",
        ],
        # Acceptance bounds, not just shape: the planner must beat the
        # scan by these margins at 100k hosts, and the unindexable
        # fallback must stay within 5% of the scan it delegates to.
        "reduction_bounds": {
            "evals_selective_100k_vs_scan": (100.0, None),
            "ns_selective_100k_vs_scan": (10.0, None),
            "unindexable_ns_overhead_100k": (None, 1.05),
        },
    },
    "BENCH_overload.json": {
        "sections": ["benchmarks", "protection"],
        "benchmarks": {
            "OverloadStorm/capacity": ["qps"],
            "OverloadStorm/shed-4x": ["goodput_qps", "p99_ms", "shed_frac"],
            "OverloadStorm/bare-4x": ["goodput_qps", "p99_ms"],
        },
        # Overload acceptance bounds (best-of-three runs, see
        # bench.sh): under a 4x storm the admission plane must keep
        # goodput at >= 70% of closed-loop capacity and hold the p99
        # sojourn of the requests it serves within 4x the CoDel
        # target. bare_goodput_vs_capacity_4x is recorded unbounded —
        # it is the collapse curve the protection is measured against,
        # and a "good" bare number would mean the storm wasn't one.
        "ratio_section": "protection",
        "ratios": [
            "goodput_vs_capacity_4x",
            "p99_queue_delay_vs_target_4x",
            "bare_goodput_vs_capacity_4x",
        ],
        "ratio_bounds": {
            "goodput_vs_capacity_4x": (0.70, None),
            "p99_queue_delay_vs_target_4x": (None, 4.0),
        },
    },
}

# BENCH_obs.json is an obs.Registry snapshot captured by
# scripts/obs_smoke.py off a live wizardd -debug endpoint; its shape
# is the registry's JSON contract rather than a benchmark table.
OBS_SCHEMA = {
    "counters": [
        "wizard_requests",
        "wizard_rejected",
        "wizard_update_failures",
        "reqlang_cache_hits",
        "reqlang_cache_misses",
        "core_selections",
        "core_memo_hits",
        "core_stale_dropped",
        "core_record_evals",
        "index_plans",
        "index_fallbacks",
        "index_rows_pruned",
        "index_residual_evals",
        "index_resyncs",
        "transport_recv_frames",
        "transport_recv_torn",
        "transport_recv_resyncs",
        "transport_recv_unknown_frames",
        "wizard_reply_errors",
        "netbatch_rx_syscalls",
        "netbatch_tx_syscalls",
        "netbatch_fallback",
        "overload_shed",
        "overload_ratelimited",
        "overload_bypass",
    ],
    "gauges": [
        "store_wizard_ver",
        "store_wizard_sys_epoch",
        "store_wizard_sys_records",
        "store_wizard_net_records",
        "store_wizard_sec_records",
    ],
    "histograms": [
        "index_apply_delta",
        "transport_epoch_catchup",
        "wizard_latency_answered",
        "wizard_latency_partial",
        "wizard_latency_stale_dropped",
        "wizard_latency_parse_error",
        "wizard_latency_rejected",
        "wizard_recv_batch",
        "wizard_send_batch",
        "overload_queue_delay",
    ],
}


def check_obs(name, doc):
    errs = []
    for section, required in OBS_SCHEMA.items():
        table = doc.get(section)
        if not isinstance(table, dict):
            errs.append(f"{name}: missing section {section!r}")
            continue
        for key in required:
            if key not in table:
                errs.append(f"{name}: {section} lacks {key!r}")
    for hname, h in doc.get("histograms", {}).items():
        for field in ("bounds", "counts", "sum", "count"):
            if field not in h:
                errs.append(f"{name}: histogram {hname} lacks {field!r}")
        bounds, counts = h.get("bounds"), h.get("counts")
        if (isinstance(bounds, list) and isinstance(counts, list)
                and len(counts) != len(bounds) + 1):
            errs.append(
                f"{name}: histogram {hname} has {len(counts)} counts for"
                f" {len(bounds)} bounds (want bounds+1, the overflow bucket)")
    return errs


def check(path):
    name = path.rsplit("/", 1)[-1]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"{path}: {e}"]
    if name == "BENCH_obs.json":
        return check_obs(name, doc)
    schema = SCHEMAS.get(name)
    if schema is None:
        return [f"{path}: no schema registered (add one to bench_schema.py)"]
    errs = []
    for section in schema["sections"]:
        if section not in doc:
            errs.append(f"{name}: missing section {section!r}")
    for bench, fields in schema["benchmarks"].items():
        row = doc.get("benchmarks", {}).get(bench)
        if row is None:
            errs.append(f"{name}: missing benchmark {bench!r}")
            continue
        for field in fields:
            if field not in row:
                errs.append(f"{name}: {bench} lacks {field!r}")
    # Ratio keys live in a per-schema section ("reduction" for the
    # transport/select files, "speedup" for the wizard file); bounds
    # are acceptance gates, not just shape.
    section = schema.get("ratio_section", "reduction")
    ratios = schema.get("ratios", schema.get("reduction", []))
    bounds = schema.get("ratio_bounds", schema.get("reduction_bounds", {}))
    for field in ratios:
        if field not in doc.get(section, {}):
            errs.append(f"{name}: {section} lacks {field!r}")
    for field, (lo, hi) in bounds.items():
        val = doc.get(section, {}).get(field)
        if not isinstance(val, (int, float)):
            continue  # absence is reported above
        if lo is not None and val < lo:
            errs.append(f"{name}: {section} {field} = {val} below bound {lo}")
        if hi is not None and val > hi:
            errs.append(f"{name}: {section} {field} = {val} above bound {hi}")
    return errs


def main():
    files = sys.argv[1:] or list(SCHEMAS) + ["BENCH_obs.json"]
    errors = []
    for path in files:
        errors += check(path)
    for e in errors:
        print("bench_schema:", e, file=sys.stderr)
    if errors:
        sys.exit(1)
    print(f"bench_schema: {', '.join(f.rsplit('/', 1)[-1] for f in files)} ok")


if __name__ == "__main__":
    main()
