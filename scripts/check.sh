#!/bin/sh
# check.sh runs the full correctness gate: formatting, go vet, build,
# race-enabled tests, and the project's own static analyzers
# (cmd/smartlint). CI runs exactly this script; run it locally before
# sending a change.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race -short -shuffle=on =="
# -short skips the multi-process integration tests and the chaos
# end-to-end tests; CI runs those in a dedicated job with a pinned
# CHAOS_SEED (and they remain part of plain `go test ./...`).
# -shuffle=on randomises test order within each package so hidden
# order dependencies surface here, not in a midnight CI run; the
# shuffle seed is printed at the top of each package's output, and
# `-shuffle=<seed>` replays a failing order exactly.
go test -race -short -shuffle=on ./...

echo "== chaos test naming =="
# CI's chaos job selects with `go test -run Chaos`; -run matches by
# unanchored substring, so a chaos test named TestFooBar is silently
# never run there. Every test in internal/chaos must carry the
# TestChaos prefix.
misnamed=$(grep -Hn '^func Test' internal/chaos/*_test.go | grep -v ':func TestChaos' || true)
if [ -n "$misnamed" ]; then
	echo "chaos tests missing the TestChaos prefix (CI's -run Chaos would skip them):" >&2
	echo "$misnamed" >&2
	exit 1
fi

echo "== smartlint =="
# -stats prints per-analyzer finding counts; the baseline gate fails
# only on findings not recorded in lint/baseline.json, so adopting a
# new analyzer never blocks unrelated changes.
go run ./cmd/smartlint -stats -baseline lint/baseline.json ./...

echo "All checks passed."
