#!/bin/sh
# bench.sh runs the wizard fast-path and transport benchmarks and
# writes the headline numbers to BENCH_wizard.json and
# BENCH_transport.json at the repository root: ns/op and allocs/op
# for the in-process answer pipeline (cached vs the
# re-parse-everything seed path), req/s for the end-to-end UDP storm
# in each serving configuration, the selection engine's
# evaluation/memoised costs, the status-epoch wire/alloc cost of
# full snapshots versus deltas, and the overload plane's goodput and
# tail sojourn under a 4x storm (BENCH_overload.json). EXPERIMENTS.md's
# wizard.qps, transport.delta and wizard.overload entries quote these
# files; bench_schema.py guards their shape and acceptance bounds.
#
# Usage: scripts/bench.sh [benchtime]   (default 2s; use 1x for smoke)
set -eu

cd "$(dirname "$0")/.."

benchtime="${1:-2s}"
out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "== go test -bench Wizard/Select (benchtime=$benchtime, count=3) =="
# count=3 with best-of-three selection: the UDP storm rows ride the
# scheduler of a shared runner, and the speedup gates below compare
# two of them, so a single noisy run must not trip the schema bounds.
go test -run=NONE -bench='WizardAnswer|WizardStorm|^BenchmarkSelect$|^BenchmarkSelectMemoized$' \
	-benchtime="$benchtime" -count=3 ./internal/wizard/ ./internal/core/ | tee "$out"

python3 - "$out" <<'EOF'
import json, re, sys

rows = {}
for line in open(sys.argv[1]):
    m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$', line)
    if not m:
        continue
    name, _, ns, rest = m.groups()
    row = {"ns_per_op": float(ns)}
    for val, unit in re.findall(r'([\d.]+)\s+(B/op|allocs/op|req/s)', rest):
        key = {"B/op": "bytes_per_op", "allocs/op": "allocs_per_op", "req/s": "qps"}[unit]
        row[key] = float(val)
    name = name.removeprefix("Benchmark")
    # Best of the -count repeats: fastest ns/op wins the row.
    if name not in rows or row["ns_per_op"] < rows[name]["ns_per_op"]:
        rows[name] = row

doc = {
    "benchmarks": rows,
    "seed_baseline": {
        # Measured at the pre-fast-path commit with this same harness
        # (11-host table, five-requirement storm mix, 8 UDP clients).
        "WizardAnswer": {"ns_per_op": 22239.0, "bytes_per_op": 19028.0, "allocs_per_op": 97.0},
        "WizardStorm": {"qps": 36430.0},
        "Select": {"ns_per_op": 21400.0, "bytes_per_op": 15704.0, "allocs_per_op": 70.0},
    },
}

storm = rows.get("WizardStorm/workers8-cached", {}).get("qps")
if storm:
    doc["speedup"] = {
        "storm_qps_vs_seed": round(storm / 36430.0, 2),
        "answer_ns_vs_seed": round(22239.0 / rows["WizardAnswer/cached"]["ns_per_op"], 1)
            if "WizardAnswer/cached" in rows else None,
    }

def storm_ratio(num, den):
    n = rows.get(f"WizardStorm/{num}", {}).get("qps")
    d = rows.get(f"WizardStorm/{den}", {}).get("qps")
    if n is None or d is None:
        return None
    return round(n / d, 2)

# The datagram-plane gates: windowed clients over 8 SO_REUSEPORT
# shards with batched syscalls must beat the sequential cached loop
# with margin, and 8 workers must never again land below it (the
# pre-plane inversion). bench_schema.py enforces both bounds.
doc.setdefault("speedup", {}).update({
    "storm_sharded_vs_seq": storm_ratio("shards8-batched", "seq-cached"),
    "storm_workers8_vs_seq": storm_ratio("workers8-cached", "seq-cached"),
})

with open("BENCH_wizard.json", "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print("wrote BENCH_wizard.json")
EOF

echo "== go test -bench TransportEpoch (benchtime=$benchtime) =="
go test -run=NONE -bench='TransportEpoch' \
	-benchtime="$benchtime" ./internal/transport/ | tee "$out"

python3 - "$out" <<'EOF'
import json, re, sys

rows = {}
for line in open(sys.argv[1]):
    m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$', line)
    if not m:
        continue
    name, _, ns, rest = m.groups()
    row = {"ns_per_op": float(ns)}
    for val, unit in re.findall(r'([\d.]+)\s+(B/op|allocs/op|bytes/epoch)', rest):
        key = {"B/op": "bytes_per_op", "allocs/op": "allocs_per_op",
               "bytes/epoch": "bytes_per_epoch"}[unit]
        row[key] = float(val)
    rows[name.removeprefix("Benchmark")] = row

def ratio(full, lean, field):
    f = rows.get(f"TransportEpoch/{full}", {}).get(field)
    l = rows.get(f"TransportEpoch/{lean}", {}).get(field)
    if f is None or l is None:
        return None
    # An idle delta stream rounds to zero once the periodic resync is
    # amortised away; clamp so the ratio stays finite.
    return round(f / max(l, 1.0), 1)

doc = {
    "benchmarks": rows,
    # One centralized status epoch for a 1000-host fleet, end to end
    # (encode, wire, receiver apply). full = thesis protocol; idle =
    # no probe reports between epochs; refresh = every probe
    # re-reports identical content. The idle/refresh reductions are
    # the PR's acceptance numbers: both must stay >= 10x.
    "reduction": {
        "bytes_idle_vs_full": ratio("full-1000h", "delta-idle-1000h", "bytes_per_epoch"),
        "bytes_refresh_vs_full": ratio("full-1000h", "delta-refresh-1000h", "bytes_per_epoch"),
        "allocs_idle_vs_full": ratio("full-1000h", "delta-idle-1000h", "allocs_per_op"),
        "allocs_refresh_vs_full": ratio("full-1000h", "delta-refresh-1000h", "allocs_per_op"),
    },
}

with open("BENCH_transport.json", "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print("wrote BENCH_transport.json")
EOF

echo "== go test -bench SelectScale (benchtime=$benchtime, count=3) =="
# count=3 with best-of-three, like the wizard block: the unindexable
# overhead gate compares two near-identical ~30ms rows, and a single
# noisy run can push their ratio past its 5% bound.
go test -run=NONE -bench='SelectScale' \
	-benchtime="$benchtime" -count=3 -timeout=45m ./internal/core/ | tee "$out"

python3 - "$out" <<'EOF'
import json, re, sys

rows = {}
for line in open(sys.argv[1]):
    m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$', line)
    if not m:
        continue
    name, _, ns, rest = m.groups()
    row = {"ns_per_op": float(ns)}
    for val, unit in re.findall(r'([\d.]+)\s+(B/op|allocs/op|evals/op)', rest):
        key = {"B/op": "bytes_per_op", "allocs/op": "allocs_per_op",
               "evals/op": "evals_per_op"}[unit]
        row[key] = float(val)
    name = name.removeprefix("Benchmark")
    if name not in rows or row["ns_per_op"] < rows[name]["ns_per_op"]:
        rows[name] = row

def ratio(num, den, field, digits=1):
    n = rows.get(f"SelectScale/{num}", {}).get(field)
    d = rows.get(f"SelectScale/{den}", {}).get(field)
    if n is None or d is None:
        return None
    return round(n / max(d, 1e-9), digits)

doc = {
    "benchmarks": rows,
    # One Select against a host table loaded at fleet scale; scan =
    # planner disabled (thesis full-table behaviour), plan = indexed
    # selection planner. The selective-at-100k ratios are the PR's
    # acceptance numbers: record evaluations must fall >= 100x and
    # ns/op >= 10x, while the unindexable fallback must stay within 5%
    # of the scan it delegates to (overhead ratio <= 1.05).
    "reduction": {
        "evals_selective_100k_vs_scan": ratio("100k/selective/scan", "100k/selective/plan", "evals_per_op"),
        "ns_selective_100k_vs_scan": ratio("100k/selective/scan", "100k/selective/plan", "ns_per_op"),
        "unindexable_ns_overhead_100k": ratio("100k/unindexable/plan", "100k/unindexable/scan", "ns_per_op", digits=3),
    },
}

with open("BENCH_select.json", "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print("wrote BENCH_select.json")
EOF

echo "== go test -bench OverloadStorm (benchtime=$benchtime, count=3) =="
# count=3 with best-of-three: the storm rows are paced off a live
# capacity measurement on a shared runner; the protection gates below
# (goodput >= 70% of capacity, p99 sojourn <= 4x the CoDel target)
# must not trip on one noisy run. Best-of is the highest goodput (or
# req/s for the capacity row), not the lowest ns/op — ns/op for a
# paced open-loop row is just the injection schedule.
go test -run=NONE -bench='OverloadStorm' \
	-benchtime="$benchtime" -count=3 ./internal/wizard/ | tee "$out"

python3 - "$out" <<'EOF'
import json, re, sys

rows = {}
for line in open(sys.argv[1]):
    m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$', line)
    if not m:
        continue
    name, _, ns, rest = m.groups()
    row = {"ns_per_op": float(ns)}
    for val, unit in re.findall(r'([\d.]+)\s+(req/s|goodput/s|p99_ms|shed_frac)', rest):
        key = {"req/s": "qps", "goodput/s": "goodput_qps",
               "p99_ms": "p99_ms", "shed_frac": "shed_frac"}[unit]
        row[key] = float(val)
    name = name.removeprefix("Benchmark")
    score = row.get("goodput_qps", row.get("qps", -row["ns_per_op"]))
    prev = rows.get(name)
    if prev is None or score > prev.get("goodput_qps", prev.get("qps", -prev["ns_per_op"])):
        rows[name] = row

CODEL_TARGET_MS = 5.0  # overload.DefaultTarget

cap = rows.get("OverloadStorm/capacity", {}).get("qps")
shed = rows.get("OverloadStorm/shed-4x", {})
bare = rows.get("OverloadStorm/bare-4x", {})

def ratio(num, den, digits=2):
    if num is None or not den:
        return None
    return round(num / den, digits)

doc = {
    "benchmarks": rows,
    # The overload acceptance gates (bench_schema.py enforces the
    # bounds): under a 4x storm the protected plane must keep goodput
    # at >= 70% of closed-loop capacity with the p99 sojourn of served
    # requests within 4x the CoDel target; the bare ratio records the
    # collapse the plane is measured against.
    "protection": {
        "codel_target_ms": CODEL_TARGET_MS,
        "goodput_vs_capacity_4x": ratio(shed.get("goodput_qps"), cap),
        "p99_queue_delay_vs_target_4x": ratio(shed.get("p99_ms"), CODEL_TARGET_MS),
        "bare_goodput_vs_capacity_4x": ratio(bare.get("goodput_qps"), cap),
    },
}

with open("BENCH_overload.json", "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print("wrote BENCH_overload.json")
EOF

echo "== obs debug-endpoint smoke =="
python3 scripts/obs_smoke.py

python3 scripts/bench_schema.py BENCH_wizard.json BENCH_transport.json BENCH_select.json BENCH_overload.json BENCH_obs.json
