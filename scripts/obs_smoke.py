#!/usr/bin/env python3
"""End-to-end smoke of the -debug observability endpoint.

Builds wizardd, runs it with -debug on a free port, drives one real
request through cmd/smartreq, then reads both endpoint formats back:
/metrics must serve the sorted plaintext dump and /metrics.json a
snapshot whose counters prove the request actually flowed through the
instrumented pipeline (wizard_requests >= 1). The JSON snapshot is
written to BENCH_obs.json at the repository root, where
bench_schema.py guards its shape alongside the benchmark files.

Usage: scripts/obs_smoke.py
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def fetch(url, timeout=2.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode()


def wait_http(url, deadline=10.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            return fetch(url)
        except OSError:
            time.sleep(0.1)
    raise SystemExit(f"obs_smoke: {url} never came up")


def main():
    os.chdir(ROOT)
    listen, recv, debug = free_port(), free_port(), free_port()
    with tempfile.TemporaryDirectory() as tmp:
        wizardd = os.path.join(tmp, "wizardd")
        subprocess.run(["go", "build", "-o", wizardd, "./cmd/wizardd"], check=True)
        proc = subprocess.Popen(
            [
                wizardd,
                "-listen", f"127.0.0.1:{listen}",
                "-receiver-listen", f"127.0.0.1:{recv}",
                "-debug", f"127.0.0.1:{debug}",
            ],
            stderr=subprocess.DEVNULL,
        )
        try:
            wait_http(f"http://127.0.0.1:{debug}/metrics")

            # One real request over UDP. The database is empty, so a
            # partial-OK request legitimately returns zero servers —
            # the smoke only needs the request to be handled, and
            # smartreq exits non-zero on an empty reply, so the exit
            # status is deliberately not checked.
            subprocess.run(
                [
                    "go", "run", "./cmd/smartreq",
                    "-wizard", f"127.0.0.1:{listen}",
                    "-req", "host_memory_total > 0\n",
                    "-partial", "-timeout", "5s",
                ],
                check=False,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )

            text = fetch(f"http://127.0.0.1:{debug}/metrics")
            snap = json.loads(fetch(f"http://127.0.0.1:{debug}/metrics.json"))
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    errs = []
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snap.get(section), dict):
            errs.append(f"snapshot lacks a {section!r} object")
    if snap.get("counters", {}).get("wizard_requests", 0) < 1:
        errs.append(f"wizard_requests = {snap.get('counters', {}).get('wizard_requests')!r},"
                    " the smoke request never reached the wizard")
    if "store_wizard_ver" not in snap.get("gauges", {}):
        errs.append("store_wizard_ver gauge missing: the replica is not registered")
    hists = snap.get("histograms", {})
    lat = [n for n in hists if n.startswith("wizard_latency_")]
    if not lat:
        errs.append("no wizard_latency_* histogram in the snapshot")
    elif sum(hists[n].get("count", 0) for n in lat) < 1:
        errs.append("latency histograms observed nothing for the smoke request")
    # Datagram plane: the default wizardd flags arm batched syscalls,
    # so the smoke request must flow through netbatch (a recvmmsg
    # wakeup and a recv-batch observation), not a bypass path.
    if snap.get("counters", {}).get("netbatch_rx_syscalls", 0) < 1:
        errs.append("netbatch_rx_syscalls = 0: the smoke request bypassed the batched plane")
    if hists.get("wizard_recv_batch", {}).get("count", 0) < 1:
        errs.append("wizard_recv_batch observed no batches for the smoke request")
    for name in snap.get("counters", {}):
        if f"\n{name} " not in "\n" + text:
            errs.append(f"counter {name} absent from the plaintext dump")
    for e in errs:
        print("obs_smoke:", e, file=sys.stderr)
    if errs:
        sys.exit(1)

    with open("BENCH_obs.json", "w") as f:
        json.dump(snap, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"obs_smoke: ok ({len(snap['counters'])} counters,"
          f" {len(snap['gauges'])} gauges, {len(snap['histograms'])} histograms);"
          " wrote BENCH_obs.json")


if __name__ == "__main__":
    main()
