package smartsock_test

// One benchmark per table and figure in the thesis's evaluation
// (regenerating the experiment in Quick mode), plus ablation
// micro-benchmarks for the design choices DESIGN.md calls out:
// string-vs-binary status encoding, UDP-vs-TCP probe reporting,
// centralized-vs-distributed transport, probe-size rules, and the
// requirement language's parse/eval costs.
//
// Run: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"smartsock/internal/bwest"
	"smartsock/internal/core"
	"smartsock/internal/experiments"
	"smartsock/internal/monitor"
	"smartsock/internal/probe"
	"smartsock/internal/proto"
	"smartsock/internal/reqlang"
	"smartsock/internal/status"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
	"smartsock/internal/testbed"
	"smartsock/internal/transport"
)

// benchExperiment regenerates one paper table/figure per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Run(id, experiments.Options{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig33RTTSweep(b *testing.B)       { benchExperiment(b, "fig3.3") }
func BenchmarkFig34RTTSweep(b *testing.B)       { benchExperiment(b, "fig3.4") }
func BenchmarkFig35RTTSweep(b *testing.B)       { benchExperiment(b, "fig3.5") }
func BenchmarkFig36SixPaths(b *testing.B)       { benchExperiment(b, "fig3.6") }
func BenchmarkTable33Bandwidth(b *testing.B)    { benchExperiment(b, "table3.3") }
func BenchmarkTable34NetmonMesh(b *testing.B)   { benchExperiment(b, "table3.4") }
func BenchmarkTable41SuperPI(b *testing.B)      { benchExperiment(b, "table4.1") }
func BenchmarkTable52Resources(b *testing.B)    { benchExperiment(b, "table5.2") }
func BenchmarkFig52MatrixPerHost(b *testing.B)  { benchExperiment(b, "fig5.2") }
func BenchmarkTable53Matrix2v2(b *testing.B)    { benchExperiment(b, "table5.3") }
func BenchmarkTable54Matrix4v4(b *testing.B)    { benchExperiment(b, "table5.4") }
func BenchmarkTable55Matrix6v6(b *testing.B)    { benchExperiment(b, "table5.5") }
func BenchmarkTable56MatrixLoaded(b *testing.B) { benchExperiment(b, "table5.6") }
func BenchmarkFig53ShaperMassd(b *testing.B)    { benchExperiment(b, "fig5.3") }
func BenchmarkTable57Massd1v1(b *testing.B)     { benchExperiment(b, "table5.7") }
func BenchmarkTable58Massd2v2(b *testing.B)     { benchExperiment(b, "table5.8") }
func BenchmarkTable59Massd3v3(b *testing.B)     { benchExperiment(b, "table5.9") }

// --- Ablation: string vs binary status encoding (§3.2.1 vs §3.5.1) ---

func sampleStatusRecord() status.ServerStatus {
	s := sysinfo.Idle("dalmatian.lab.example", 4771.02, 512)
	s.Load1, s.Load5, s.Load15 = 0.42, 0.31, 0.18
	s.NetRBytesPS, s.NetTBytesPS = 200000, 100000
	return s
}

func BenchmarkStatusEncodeASCII(b *testing.B) {
	s := sampleStatusRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		status.EncodeReport(&s)
	}
}

func BenchmarkStatusDecodeASCII(b *testing.B) {
	s := sampleStatusRecord()
	enc := status.EncodeReport(&s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := status.DecodeReport(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatusEncodeBinaryBatch(b *testing.B) {
	recs := make([]status.ServerStatus, 11)
	for i := range recs {
		recs[i] = sampleStatusRecord()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		status.MarshalSystemBatch(recs)
	}
}

func BenchmarkStatusDecodeBinaryBatch(b *testing.B) {
	recs := make([]status.ServerStatus, 11)
	for i := range recs {
		recs[i] = sampleStatusRecord()
	}
	enc := status.MarshalSystemBatch(recs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := status.UnmarshalSystemBatch(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: requirement language parse and eval cost ---

const benchRequirement = `host_system_load1 < 1
host_memory_used <= 250*1024*1024
host_cpu_free >= 0.9
host_network_tbytesps < 1024*1024
(monitor_network_delay < 20) && (monitor_network_bw > 10)
user_denied_host1 = 137.132.90.182
user_preferred_host1 = sagit.ddns.comp.nus.edu.sg
`

func BenchmarkReqlangParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := reqlang.Parse(benchRequirement); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReqlangEval(b *testing.B) {
	prog, err := reqlang.Parse(benchRequirement)
	if err != nil {
		b.Fatal(err)
	}
	s := sampleStatusRecord()
	params := s.Vars()
	params["monitor_network_delay"] = 5
	params["monitor_network_bw"] = 95
	env := &reqlang.Env{Params: params}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := prog.Eval(env)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// --- Ablation: wizard request throughput over live UDP ---

func BenchmarkWizardRequestReply(b *testing.B) {
	cluster, err := testbed.Boot(testbed.Options{ProbeInterval: 50 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(ctx, len(cluster.Machines)); err != nil {
		b.Fatal(err)
	}
	conn, err := net.Dial("udp", cluster.WizardAddr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 64*1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := &proto.Request{Seq: uint32(i), ServerNum: 4, Option: proto.OptPartialOK,
			Detail: "host_cpu_free > 0.5"}
		if _, err := conn.Write(proto.MarshalRequest(req)); err != nil {
			b.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: UDP vs TCP probe reporting (Ch. 6) ---

func benchProbeTransport(b *testing.B, tr probe.Transport) {
	db := store.New()
	mon, err := monitor.New(monitor.Config{Addr: "127.0.0.1:0", DB: db, EnableTCP: true})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go mon.Run(ctx)
	p, err := probe.New(probe.Config{
		Source:    sysinfo.NewSynthetic(sampleStatusRecord()),
		Monitor:   mon.Addr(),
		Transport: tr,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.ReportOnce(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbeReportUDP(b *testing.B) { benchProbeTransport(b, probe.UDP) }
func BenchmarkProbeReportTCP(b *testing.B) { benchProbeTransport(b, probe.TCP) }

// --- Ablation: centralized push vs distributed pull (§3.5.1) ---

func BenchmarkTransportCentralizedPush(b *testing.B) {
	src := store.New()
	for i := 0; i < 11; i++ {
		src.PutSys(sysinfo.Idle(fmt.Sprintf("h%d", i), 3000, 256))
	}
	dst := store.New()
	recv, err := transport.NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go recv.Run(ctx)
	tx, err := transport.NewTransmitter(src, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Push as fast as possible to measure per-snapshot cost.
	go tx.RunActive(ctx, recv.Addr(), time.Microsecond)
	b.ResetTimer()
	start := tx.Sent()
	for tx.Sent() < start+uint64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
}

func BenchmarkTransportDistributedPull(b *testing.B) {
	src := store.New()
	for i := 0; i < 11; i++ {
		src.PutSys(sysinfo.Idle(fmt.Sprintf("h%d", i), 3000, 256))
	}
	tx, err := transport.NewTransmitter(src, nil)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go tx.ServePassive(ctx, ln)
	dst := store.New()
	recv, err := transport.NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	targets := []string{ln.Addr().String()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := recv.PullFrom(targets, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: probe-size rules (§3.3.2) as a sweep ---

func BenchmarkEstimatorProbeSizeSweep(b *testing.B) {
	path, err := testbed.CampusPath(1500, 1)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name   string
		s1, s2 int
	}{
		{"subMTU", 100, 500},
		{"mixedFrag", 2000, 6000},
		{"optimal", 1600, 2900},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bwest.EstimateOnce(path, bwest.StreamConfig{S1: c.s1, S2: c.s2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: selection cost against a large server pool ---

func BenchmarkSelectionScaling(b *testing.B) {
	for _, pool := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("servers=%d", pool), func(b *testing.B) {
			db := store.New()
			for i := 0; i < pool; i++ {
				db.PutSys(sysinfo.Idle(fmt.Sprintf("host-%04d", i), float64(1000+i), 256))
			}
			sel := newBenchSelector(b, db)
			prog, err := reqlang.Parse("(host_cpu_free > 0.9) && (host_memory_free > 5)")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sel.Select(prog, 4, proto.OptPartialOK); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func newBenchSelector(b *testing.B, db *store.DB) *core.Selector {
	b.Helper()
	sel, err := core.New(db, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return sel
}
