// Command echod is the UDP echo reflector live network monitors
// probe against (the raw-socket-free stand-in for the thesis's ICMP
// port-unreachable echoes, §3.3.2): it bounces the 16-byte probe
// header back to the sender.
//
//	echod -listen :1112
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"smartsock/internal/bwest"
)

func main() {
	listen := flag.String("listen", ":1112", "UDP listen address")
	flag.Parse()
	logger := log.New(os.Stderr, "echod: ", log.LstdFlags)

	srv, err := bwest.NewEchoServer(*listen)
	if err != nil {
		logger.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Printf("echoing probes on %s", srv.Addr())
	if err := srv.Run(ctx); err != nil && ctx.Err() == nil {
		logger.Fatal(err)
	}
}
