// Command wizardd runs the wizard machine of §3.6: a receiver that
// mirrors monitor databases (port 1121 in the thesis, Table 4.2) and
// the wizard answering client requests on UDP (port 1120).
//
// Centralized mode (default): transmitters push to -receiver-listen.
// Distributed mode: pass every passive transmitter with -pull; the
// wizard refreshes from them when a request arrives.
//
//	wizardd -listen :1120 -receiver-listen :1121
//	wizardd -listen :1120 -pull mon1.lab:1110 -pull mon2.lab:1110
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smartsock/internal/core"
	"smartsock/internal/obs"
	"smartsock/internal/overload"
	"smartsock/internal/store"
	"smartsock/internal/transport"
	"smartsock/internal/wizard"
)

type addrList []string

func (a *addrList) String() string     { return strings.Join(*a, ",") }
func (a *addrList) Set(v string) error { *a = append(*a, v); return nil }

func main() {
	var (
		listen      = flag.String("listen", ":1120", "UDP address for client requests")
		recvListen  = flag.String("receiver-listen", ":1121", "TCP address for transmitter pushes")
		servicePort = flag.Int("service-port", 0, "port appended to selected hosts (0: none)")
		localMon    = flag.String("local-monitor", "", "name of the client-side network monitor")
		groupsFlag  = flag.String("groups", "", "host→group map as host=group,host=group")
		tplFile     = flag.String("templates", "", "requirement template file ([name] sections, §3.6.1)")
		workers     = flag.Int("workers", 1, "concurrent request handlers; 1 is the thesis-faithful sequential mode")
		cacheSize   = flag.Int("cache-size", 0, "compiled-requirement cache entries (0: default, <0: disable)")
		planAt      = flag.Int("plan-threshold", 0, "table size where the indexed selection planner takes over (0: default, <0: always full-scan)")
		udpBatch    = flag.Int("udp-batch", 32, "request datagrams per socket syscall (recvmmsg/sendmmsg; 1: one syscall per datagram)")
		shards      = flag.Int("shards", 1, "SO_REUSEPORT listener sockets for the request port (Linux; 1: single socket)")
		maxQueue    = flag.Int("max-queue", 1024, "per-shard ingress queue bound in requests (0: overload protection off)")
		codelTarget = flag.Duration("codel-target", 5*time.Millisecond, "CoDel sojourn-time target for shedding queued requests")
		rateLimit   = flag.Float64("rate-limit", 0, "per-source admitted requests/sec (0: no per-source limit)")
		rateBurst   = flag.Int("rate-burst", 0, "per-source token-bucket burst (0: 2x rate-limit, at least 8)")
		compat      = flag.Bool("compat", false, "thesis-faithful mode: sequential serving, no requirement cache, unbatched unsharded socket, full-snapshot transport, no selection planner, no overload protection")
		debugAddr   = flag.String("debug", "", "HTTP metrics endpoint address, e.g. 127.0.0.1:6060 (empty: disabled)")
		pulls       addrList
	)
	flag.Var(&pulls, "pull", "passive transmitter to pull from on each request (repeatable; enables distributed mode)")
	flag.Parse()
	logger := log.New(os.Stderr, "wizardd: ", log.LstdFlags)

	db := store.New()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		dbg, err := obs.NewDebugServer(*debugAddr, reg)
		if err != nil {
			logger.Fatal(err)
		}
		go func() {
			if err := dbg.Run(ctx); err != nil {
				logger.Printf("debug endpoint: %v", err)
			}
		}()
		logger.Printf("debug metrics on http://%s/metrics", dbg.Addr())
	}
	db.RegisterObs(reg, "wizard")

	if *compat {
		// The overload half of -compat: the thesis wizard never sheds —
		// every request waits its turn in the kernel socket buffer.
		*maxQueue = 0
		*rateLimit = 0
	}
	// Built unconditionally (even when disabled) so the overload_*
	// metrics always exist on the debug endpoint.
	gate := overload.New(overload.Config{
		MaxQueue: *maxQueue,
		Target:   *codelTarget,
		Rate:     *rateLimit,
		Burst:    *rateBurst,
		Obs:      reg,
	})

	recv, err := transport.NewReceiverObs(db, *recvListen, logger, reg)
	if err != nil {
		logger.Fatal(err)
	}
	// The transport half of -compat: thesis pull protocol, whole-table
	// loads. Set before the update hook captures the receiver.
	recv.Compat = *compat
	// Transport frames carry the data the wizard answers from; they are
	// priority traffic and bypass shedding (audited via overload_bypass).
	recv.Overload = gate
	var update wizard.UpdateFunc
	if len(pulls) > 0 {
		targets := []string(pulls)
		update = func(context.Context) error { return recv.PullFrom(targets, 2*time.Second) }
		logger.Printf("distributed mode: pulling from %v per request", targets)
	} else {
		go recv.Run(ctx)
		logger.Printf("centralized mode: receiver on %s", recv.Addr())
	}

	groups := map[string]string{}
	if *groupsFlag != "" {
		for _, kv := range strings.Split(*groupsFlag, ",") {
			host, group, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				logger.Fatalf("bad -groups entry %q, want host=group", kv)
			}
			groups[host] = group
		}
	}
	var groupOf func(string) string
	if len(groups) > 0 {
		groupOf = func(h string) string { return groups[h] }
	}
	if *compat {
		// The selection half of -compat: the thesis wizard walks the
		// whole table on every request, so the planner stays off.
		*planAt = -1
	}
	sel, err := core.New(db, core.Config{
		LocalMonitor:  *localMon,
		GroupOf:       groupOf,
		ServicePort:   *servicePort,
		PlanThreshold: *planAt,
		Obs:           reg,
	})
	if err != nil {
		logger.Fatal(err)
	}
	var templates map[string]string
	if *tplFile != "" {
		templates, err = wizard.LoadTemplates(*tplFile)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("loaded %d requirement templates from %s", len(templates), *tplFile)
	}
	if *compat {
		// §3.6.1 verbatim: one sequential handler, every requirement
		// parsed on arrival, one datagram per socket syscall.
		*workers = 1
		*cacheSize = -1
		*udpBatch = 1
		*shards = 1
	}
	wz, err := wizard.New(wizard.Config{
		Addr:      *listen,
		Selector:  sel,
		Update:    update,
		Templates: templates,
		Logger:    logger,
		Workers:   *workers,
		CacheSize: *cacheSize,
		Batch:     *udpBatch,
		Shards:    *shards,
		Overload:  gate,
		Obs:       reg,
	})
	if err != nil {
		logger.Fatal(err)
	}
	mode := "overload protection off"
	if gate.Enabled() {
		mode = fmt.Sprintf("max-queue %d, codel-target %v", *maxQueue, *codelTarget)
		if *rateLimit > 0 {
			mode += fmt.Sprintf(", rate-limit %g/s", *rateLimit)
		}
	}
	logger.Printf("wizard on %s (%d worker(s), %d shard(s), batch %d; %s)",
		wz.Addr(), max(*workers, 1), wz.Shards(), *udpBatch, mode)
	go wz.Run(ctx)
	<-ctx.Done()
}
