// Command probe is the server probe daemon of §3.2.1: it scans the
// local system status (live /proc on Linux) at a fixed interval and
// reports it to a system monitor over UDP (or TCP with -tcp, the
// Chapter 6 extension for lossy networks).
//
//	probe -monitor mon.lab:1111 [-host $(hostname)] [-interval 5s] [-tcp]
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"smartsock/internal/probe"
	"smartsock/internal/sysinfo"
)

func main() {
	var (
		monitorAddr = flag.String("monitor", "", "system monitor address host:port (required)")
		host        = flag.String("host", "", "name to report for this server (default: hostname)")
		interval    = flag.Duration("interval", 0, "probe interval (default 5s)")
		procRoot    = flag.String("proc", "/proc", "proc filesystem root")
		useTCP      = flag.Bool("tcp", false, "report over TCP instead of UDP")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "probe: ", log.LstdFlags)
	if *monitorAddr == "" {
		logger.Fatal("-monitor is required")
	}
	if *host == "" {
		h, err := os.Hostname()
		if err != nil {
			logger.Fatalf("hostname: %v", err)
		}
		*host = h
	}
	transport := probe.UDP
	if *useTCP {
		transport = probe.TCP
	}
	p, err := probe.New(probe.Config{
		Source:    sysinfo.NewProcSource(*host, *procRoot),
		Monitor:   *monitorAddr,
		Interval:  *interval,
		Transport: transport,
		Logger:    logger,
	})
	if err != nil {
		logger.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Printf("reporting %s to %s every %v over %v", *host, *monitorAddr, *interval, transport)
	if err := p.Run(ctx); err != nil && ctx.Err() == nil {
		logger.Fatal(err)
	}
}
