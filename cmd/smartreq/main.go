// Command smartreq queries a wizard from the command line: it sends a
// requirement (inline or from a file, §3.6.2 format) and prints the
// selected servers, one per line — a shell-scriptable face for the
// client library.
//
//	smartreq -wizard wizard.lab:1120 -n 3 -req 'host_cpu_free > 0.9'
//	smartreq -wizard wizard.lab:1120 -n 2 -file requirement.txt -connect
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"smartsock"
)

func main() {
	var (
		wizardAddr = flag.String("wizard", "127.0.0.1:1120", "wizard UDP address")
		n          = flag.Int("n", 1, "number of servers to request")
		req        = flag.String("req", "", "requirement text")
		file       = flag.String("file", "", "requirement file (overrides -req)")
		partial    = flag.Bool("partial", false, "accept fewer servers than requested")
		rank       = flag.Bool("rank", false, "rank by the requirement's score expression")
		template   = flag.Bool("template", false, "treat -req as a template name on the wizard")
		connect    = flag.Bool("connect", false, "also open a TCP connection to each server to verify reachability")
		timeout    = flag.Duration("timeout", 5*time.Second, "overall deadline")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "smartreq: ", 0)

	requirement := *req
	if *file != "" {
		text, err := smartsock.LoadRequirement(*file)
		if err != nil {
			logger.Fatal(err)
		}
		requirement = text
	} else if err := smartsock.CheckRequirement(requirement); err != nil {
		logger.Fatal(err)
	}

	var opts []smartsock.Option
	if *partial {
		opts = append(opts, smartsock.OptPartialOK)
	}
	if *rank {
		opts = append(opts, smartsock.OptRankByExpr)
	}
	if *template {
		opts = append(opts, smartsock.OptTemplate)
	}

	client, err := smartsock.NewClient(*wizardAddr, nil)
	if err != nil {
		logger.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *connect {
		set, err := client.Connect(ctx, requirement, *n, opts...)
		if err != nil {
			logger.Fatal(err)
		}
		defer set.Close()
		for i, addr := range set.Addrs() {
			fmt.Printf("%s\t(connected: %v)\n", addr, set.Conns()[i].RemoteAddr())
		}
		return
	}
	servers, err := client.RequestServers(ctx, requirement, *n, opts...)
	if err != nil {
		logger.Fatal(err)
	}
	for _, s := range servers {
		fmt.Println(s)
	}
}
