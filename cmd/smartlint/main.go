// Command smartlint runs the project's static-analysis suite (see
// internal/lint and internal/lint/flow) over the given package
// patterns and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/smartlint ./...
//	go run ./cmd/smartlint -list
//	go run ./cmd/smartlint -only mutexheld,deadline ./internal/...
//	go run ./cmd/smartlint -json ./... > lint/baseline.json
//	go run ./cmd/smartlint -json -baseline lint/baseline.json ./...
//	go run ./cmd/smartlint -stats ./...
//
// Findings print as `file:line: [analyzer] message` (or as a JSON
// array with -json). Suppress one with a `//lint:ignore <analyzer>
// <reason>` comment on the same line or the line above. With
// -baseline, findings recorded in the baseline file are tolerated and
// only *new* findings fail the run — the CI gate; stale baseline
// entries (fixed findings) are reported on stderr so the file gets
// pruned.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smartsock/internal/lint"

	// Register the flow-sensitive analyzers (wiretaint, framecase,
	// lockorder, leakygo).
	_ "smartsock/internal/lint/flow"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	baseline := flag.String("baseline", "", "baseline file: only findings not in it fail the run")
	stats := flag.Bool("stats", false, "print per-analyzer finding counts to stderr")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := lint.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "smartlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := lint.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smartlint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, analyzers)

	cwd, _ := os.Getwd()
	jf := lint.ToJSON(findings, cwd)

	fail := jf
	if *baseline != "" {
		base, err := lint.ReadBaselineFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smartlint: %v\n", err)
			os.Exit(2)
		}
		fresh, stale := lint.Diff(jf, base)
		fail = fresh
		for _, s := range stale {
			fmt.Fprintf(os.Stderr, "smartlint: stale baseline entry (finding fixed): %s [%s] %s\n", s.File, s.Analyzer, s.Message)
		}
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, fail); err != nil {
			fmt.Fprintf(os.Stderr, "smartlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		baselined := len(jf) - len(fail)
		shown := make(map[int]bool, len(fail))
		for _, f := range fail {
			shown[indexOf(jf, f, shown)] = true
		}
		for i, f := range jf {
			if *baseline == "" || shown[i] {
				fmt.Printf("%s:%d: [%s] %s\n", f.File, f.Line, f.Analyzer, f.Message)
			}
		}
		if baselined > 0 {
			fmt.Fprintf(os.Stderr, "smartlint: %d baselined finding(s) suppressed\n", baselined)
		}
	}

	if *stats {
		counts := make(map[string]int)
		for _, f := range jf {
			counts[f.Analyzer]++
		}
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "smartlint: %-10s %d finding(s)\n", a.Name, counts[a.Name])
		}
	}

	if len(fail) > 0 {
		fmt.Fprintf(os.Stderr, "smartlint: %d new finding(s) across %d package(s)\n", len(fail), len(pkgs))
		os.Exit(1)
	}
}

// indexOf locates f's position in all, skipping indexes already
// claimed, so duplicate findings map one-to-one.
func indexOf(all []lint.JSONFinding, f lint.JSONFinding, taken map[int]bool) int {
	for i, c := range all {
		if taken[i] {
			continue
		}
		if c == f {
			return i
		}
	}
	return -1
}
