// Command smartlint runs the project's static-analysis suite (see
// internal/lint) over the given package patterns and exits non-zero
// on any finding.
//
// Usage:
//
//	go run ./cmd/smartlint ./...
//	go run ./cmd/smartlint -list
//	go run ./cmd/smartlint -only mutexheld,deadline ./internal/...
//
// Findings print as `file:line: [analyzer] message`. Suppress one
// with a `//lint:ignore <analyzer> <reason>` comment on the same line
// or the line above.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smartsock/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := lint.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "smartlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := lint.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smartlint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "smartlint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
