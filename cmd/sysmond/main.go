// Command sysmond is the system status monitor of §3.2.2: it ingests
// probe reports on UDP port 1111 (the thesis's assignment, Table
// 4.2), maintains the server status database, expires silent servers
// and feeds the local transmitter.
//
// For a complete single-machine monitor node, sysmond can also host
// the network monitor, security monitor and transmitter; see the
// flags below. Components left unconfigured simply do not start.
//
//	sysmond -listen :1111 -receiver wizard.lab:1121 \
//	        -seclog /etc/smartsock/security.log \
//	        -netmon netmon-1 -peer netmon-2=peer2.lab:1112
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smartsock/internal/bwest"
	"smartsock/internal/monitor"
	"smartsock/internal/netmon"
	"smartsock/internal/obs"
	"smartsock/internal/secmon"
	"smartsock/internal/store"
	"smartsock/internal/transport"
)

type peerList []string

func (p *peerList) String() string     { return strings.Join(*p, ",") }
func (p *peerList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var (
		listen     = flag.String("listen", ":1111", "UDP address for probe reports")
		interval   = flag.Duration("interval", 5*time.Second, "expected probe interval")
		missed     = flag.Int("missed", 3, "intervals before a silent server expires")
		enableTCP  = flag.Bool("tcp", false, "also accept framed TCP probe reports")
		receiver   = flag.String("receiver", "", "receiver address for centralized push (empty: passive mode)")
		passive    = flag.String("passive", "", "TCP listen address for distributed-mode pulls (e.g. :1110)")
		seclog     = flag.String("seclog", "", "security log file for the security monitor")
		netmonName = flag.String("netmon", "", "this node's network monitor name (enables netmon)")
		udpBatch   = flag.Int("udp-batch", 32, "report datagrams per socket syscall (recvmmsg; 1: one syscall per datagram)")
		shards     = flag.Int("shards", 1, "SO_REUSEPORT listener sockets for the report port (Linux; 1: single socket)")
		compat     = flag.Bool("compat", false, "thesis-faithful wire mode: full snapshot every epoch, no deltas, unbatched unsharded ingest")
		resyncEv   = flag.Int("resync-every", 0, "delta epochs between unsolicited full snapshots (0: default)")
		debugAddr  = flag.String("debug", "", "HTTP metrics endpoint address, e.g. 127.0.0.1:6061 (empty: disabled)")
		peers      peerList
	)
	flag.Var(&peers, "peer", "network peer as name=echoAddr (repeatable)")
	flag.Parse()
	logger := log.New(os.Stderr, "sysmond: ", log.LstdFlags)

	db := store.New()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		dbg, err := obs.NewDebugServer(*debugAddr, reg)
		if err != nil {
			logger.Fatal(err)
		}
		go func() {
			if err := dbg.Run(ctx); err != nil {
				logger.Printf("debug endpoint: %v", err)
			}
		}()
		logger.Printf("debug metrics on http://%s/metrics", dbg.Addr())
	}
	db.RegisterObs(reg, "monitor")

	if *compat {
		// The ingest half of -compat: one datagram per socket syscall,
		// one listener socket — the historical serve loop.
		*udpBatch = 1
		*shards = 1
	}
	mon, err := monitor.New(monitor.Config{
		Addr:            *listen,
		DB:              db,
		Interval:        *interval,
		MissedIntervals: *missed,
		EnableTCP:       *enableTCP,
		Batch:           *udpBatch,
		Shards:          *shards,
		Logger:          logger,
		Obs:             reg,
	})
	if err != nil {
		logger.Fatal(err)
	}
	go mon.Run(ctx)
	logger.Printf("system monitor on %s (%d shard(s), batch %d)", mon.Addr(), mon.Shards(), *udpBatch)

	if *seclog != "" {
		sm, err := secmon.New(secmon.Config{
			Agent:  secmon.LogAgent{Path: *seclog},
			DB:     db,
			Logger: logger,
		})
		if err != nil {
			logger.Fatal(err)
		}
		go sm.Run(ctx)
		logger.Printf("security monitor reading %s", *seclog)
	}

	if *netmonName != "" && len(peers) > 0 {
		var nps []netmon.Peer
		for _, spec := range peers {
			name, addr, ok := strings.Cut(spec, "=")
			if !ok {
				logger.Fatalf("bad -peer %q, want name=addr", spec)
			}
			prober, err := bwest.NewUDPProber(addr, time.Second)
			if err != nil {
				logger.Fatalf("peer %s: %v", name, err)
			}
			defer prober.Close()
			nps = append(nps, netmon.Peer{Name: name, Prober: prober, MTU: 1500})
		}
		nm, err := netmon.New(netmon.Config{
			Name:   *netmonName,
			Peers:  nps,
			DB:     db,
			Logger: logger,
		})
		if err != nil {
			logger.Fatal(err)
		}
		go nm.Run(ctx)
		logger.Printf("network monitor %s probing %d peers", *netmonName, len(nps))
	}

	tx, err := transport.NewTransmitterObs(db, logger, reg)
	if err != nil {
		logger.Fatal(err)
	}
	tx.Compat = *compat
	tx.ResyncEvery = *resyncEv
	switch {
	case *receiver != "":
		logger.Printf("centralized mode: pushing to %s", *receiver)
		go tx.RunActive(ctx, *receiver, *interval)
	case *passive != "":
		ln, err := net.Listen("tcp", *passive)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("distributed mode: serving pulls on %s", ln.Addr())
		go tx.ServePassive(ctx, ln)
	default:
		logger.Print("no -receiver/-passive: transmitter idle (monitor-only node)")
	}

	<-ctx.Done()
}
