// Command smartbench regenerates the thesis's tables and figures.
//
// Usage:
//
//	smartbench -list
//	smartbench -exp table5.3
//	smartbench -all [-quick]
//
// Each experiment prints the same rows the paper reports; see
// EXPERIMENTS.md for the paper-versus-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"smartsock/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiment ids and exit")
		exp   = flag.String("exp", "", "run one experiment by id (e.g. table5.3, fig3.7)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "shrink workloads (CI mode)")
		seed  = flag.Int64("seed", 1, "random seed for reproducible runs")
	)
	flag.Parse()

	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case *exp != "":
		if err := runOne(*exp, *quick, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "smartbench:", err)
			os.Exit(1)
		}
	case *all:
		failed := 0
		for _, id := range experiments.IDs() {
			if err := runOne(id, *quick, *seed); err != nil {
				fmt.Fprintf(os.Stderr, "smartbench: %s: %v\n", id, err)
				failed++
			}
		}
		if failed > 0 {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(id string, quick bool, seed int64) error {
	start := time.Now()
	table, err := experiments.Run(id, experiments.Options{Quick: quick, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(table.Render())
	fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}
