// Command massd is the thesis's massive download program (§5.3.2):
// a block server and a parallel downloader that fetches from several
// servers at once over wizard-selected sockets.
//
//	massd -mode server -listen :9100 [-rate 860]
//	    serve blocks; -rate caps the uplink in KB/s (the rshaper
//	    stand-in).
//
//	massd -mode client -data 50000 -blk 100 \
//	      -wizard w.lab:1120 -req 'monitor_network_bw > 6' -servers 3
//	    download -data KB in -blk KB blocks across the selected
//	    servers and report throughput. -addr host:port (repeatable)
//	    bypasses the wizard.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"smartsock"
	"smartsock/internal/massd"
	"smartsock/internal/shaper"
	"smartsock/internal/taskdiv"
)

type addrList []string

func (a *addrList) String() string     { return strings.Join(*a, ",") }
func (a *addrList) Set(v string) error { *a = append(*a, v); return nil }

func main() {
	var (
		mode       = flag.String("mode", "client", "server | client")
		listen     = flag.String("listen", ":9100", "server listen address")
		rateKBps   = flag.Float64("rate", 0, "server uplink cap in KB/s (0: unshaped)")
		dataKB     = flag.Int64("data", 50000, "client: total KB to download")
		blkKB      = flag.Int64("blk", 100, "client: block size in KB")
		wizardAddr = flag.String("wizard", "", "wizard address")
		req        = flag.String("req", "", "server requirement")
		autoMbps   = flag.Float64("auto-req", 0, "derive the requirement from a per-server bandwidth need in Mbps (taskdiv)")
		servers    = flag.Int("servers", 1, "number of servers to request")
		addrs      addrList
	)
	flag.Var(&addrs, "addr", "explicit server address (repeatable, bypasses the wizard)")
	flag.Parse()
	logger := log.New(os.Stderr, "massd: ", 0)

	switch *mode {
	case "server":
		raw, err := net.Listen("tcp", *listen)
		if err != nil {
			logger.Fatal(err)
		}
		var ln net.Listener = raw
		if *rateKBps > 0 {
			shaped, err := shaper.NewListener(raw, *rateKBps*1024)
			if err != nil {
				logger.Fatal(err)
			}
			ln = shaped
			logger.Printf("uplink shaped to %.0f KB/s", *rateKBps)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		srv := &massd.Server{}
		logger.Printf("file server on %s", raw.Addr())
		if err := srv.Serve(ctx, ln); err != nil && ctx.Err() == nil {
			logger.Fatal(err)
		}

	case "client":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		var conns []net.Conn
		if len(addrs) > 0 {
			for _, addr := range addrs {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					logger.Fatalf("dial %s: %v", addr, err)
				}
				defer conn.Close()
				conns = append(conns, conn)
			}
		} else {
			if *wizardAddr == "" {
				logger.Fatal("client mode needs -wizard or -addr")
			}
			requirement := *req
			if *autoMbps > 0 {
				// Ch. 6 task-division module: a massive download is
				// network-bound with light disk traffic on the server.
				profile := taskdiv.TaskProfile{NetworkMbps: *autoMbps, DiskIO: taskdiv.Light}
				generated, err := profile.GenerateRequirement()
				if err != nil {
					logger.Fatal(err)
				}
				requirement = generated
				logger.Printf("auto-generated requirement:\n%s", requirement)
			}
			client, err := smartsock.NewClient(*wizardAddr, nil)
			if err != nil {
				logger.Fatal(err)
			}
			set, err := client.Connect(ctx, requirement, *servers)
			if err != nil {
				logger.Fatal(err)
			}
			defer set.Close()
			logger.Printf("wizard selected %v", set.Addrs())
			conns = set.Conns()
		}
		stats, err := massd.Download(ctx, conns, *dataKB*1024, *blkKB*1024)
		if err != nil {
			logger.Fatal(err)
		}
		fmt.Printf("downloaded %d KB over %d servers in %v: %.0f KB/s\n",
			stats.Bytes/1024, len(conns), stats.Elapsed.Round(stats.Elapsed/100),
			stats.ThroughputKBps())
		for i, b := range stats.PerConn {
			fmt.Printf("  server %d: %d KB\n", i+1, b/1024)
		}

	default:
		logger.Fatalf("unknown -mode %q", *mode)
	}
}
