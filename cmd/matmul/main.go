// Command matmul is the thesis's distributed matrix multiplication
// program (§5.3.1, Appendix C). It runs in three modes:
//
//	matmul -mode local -n 500
//	    multiply two random n×n matrices in-process (the thesis's
//	    "vector multiplication way").
//
//	matmul -mode worker -listen :9000 [-speed 0.6]
//	    serve tiles for masters; -speed emulates a slower CPU.
//
//	matmul -mode master -n 500 -blk 100 -wizard w.lab:1120 \
//	       -req 'host_cpu_free > 0.9' -servers 4
//	    ask the wizard for servers and distribute the product over
//	    the returned sockets. -addr host:port (repeatable) bypasses
//	    the wizard for manual server lists.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smartsock"
	"smartsock/internal/matrix"
	"smartsock/internal/taskdiv"
)

type addrList []string

func (a *addrList) String() string     { return strings.Join(*a, ",") }
func (a *addrList) Set(v string) error { *a = append(*a, v); return nil }

func main() {
	var (
		mode       = flag.String("mode", "local", "local | worker | master")
		n          = flag.Int("n", 500, "matrix dimension")
		blk        = flag.Int("blk", 100, "tile size for distributed mode")
		seed       = flag.Int64("seed", 1, "matrix content seed")
		listen     = flag.String("listen", ":9000", "worker listen address")
		speed      = flag.Float64("speed", 1.0, "worker speed factor (0,1]")
		wizardAddr = flag.String("wizard", "", "wizard address for master mode")
		req        = flag.String("req", "", "server requirement for master mode")
		autoReq    = flag.Bool("auto-req", false, "derive the requirement from the task profile (taskdiv)")
		servers    = flag.Int("servers", 2, "number of servers to request")
		check      = flag.Bool("check", false, "master: verify against a local multiply")
		addrs      addrList
	)
	flag.Var(&addrs, "addr", "explicit worker address (repeatable, bypasses the wizard)")
	flag.Parse()
	logger := log.New(os.Stderr, "matmul: ", 0)

	switch *mode {
	case "local":
		a, err := matrix.NewRandom(*n, *n, *seed)
		if err != nil {
			logger.Fatal(err)
		}
		b, err := matrix.NewRandom(*n, *n, *seed+1)
		if err != nil {
			logger.Fatal(err)
		}
		start := time.Now()
		if _, err := matrix.MultiplyLocal(a, b); err != nil {
			logger.Fatal(err)
		}
		fmt.Printf("local %d×%d multiply: %v\n", *n, *n, time.Since(start).Round(time.Millisecond))

	case "worker":
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			logger.Fatal(err)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		w := &matrix.Worker{SpeedFactor: *speed}
		logger.Printf("worker on %s (speed %.2f)", ln.Addr(), *speed)
		if err := w.Serve(ctx, ln); err != nil && ctx.Err() == nil {
			logger.Fatal(err)
		}

	case "master":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		var conns []net.Conn
		if len(addrs) > 0 {
			for _, addr := range addrs {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					logger.Fatalf("dial %s: %v", addr, err)
				}
				defer conn.Close()
				conns = append(conns, conn)
			}
		} else {
			if *wizardAddr == "" {
				logger.Fatal("master mode needs -wizard or -addr")
			}
			requirement := *req
			if *autoReq {
				// Ch. 6 task-division module: characterise the job and
				// let taskdiv write the requirement. A distributed
				// multiply is CPU-heavy and holds ~3 matrices of
				// n²×8 bytes per worker in the worst case.
				memMB := uint64(3*(*n)*(*n)*8/(1<<20)) + 8
				profile := taskdiv.TaskProfile{CPU: taskdiv.Heavy, MemoryMB: memMB}
				generated, err := profile.GenerateRequirement()
				if err != nil {
					logger.Fatal(err)
				}
				requirement = generated
				logger.Printf("auto-generated requirement:\n%s", requirement)
			}
			client, err := smartsock.NewClient(*wizardAddr, nil)
			if err != nil {
				logger.Fatal(err)
			}
			set, err := client.Connect(ctx, requirement, *servers)
			if err != nil {
				logger.Fatal(err)
			}
			defer set.Close()
			logger.Printf("wizard selected %v", set.Addrs())
			conns = set.Conns()
		}
		a, err := matrix.NewRandom(*n, *n, *seed)
		if err != nil {
			logger.Fatal(err)
		}
		b, err := matrix.NewRandom(*n, *n, *seed+1)
		if err != nil {
			logger.Fatal(err)
		}
		start := time.Now()
		c, err := matrix.Distribute(ctx, a, b, *blk, conns)
		if err != nil {
			logger.Fatal(err)
		}
		fmt.Printf("distributed %d×%d multiply over %d workers: %v\n",
			*n, *n, len(conns), time.Since(start).Round(time.Millisecond))
		if *check {
			want, err := matrix.MultiplyLocal(a, b)
			if err != nil {
				logger.Fatal(err)
			}
			if !c.Equal(want, 1e-9) {
				logger.Fatal("VERIFICATION FAILED: distributed result differs from local")
			}
			fmt.Println("verified against local multiply")
		}

	default:
		logger.Fatalf("unknown -mode %q", *mode)
	}
}
