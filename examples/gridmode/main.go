// Gridmode: the large-scale deployment of §3.5.1 — multiple server
// groups, each with its own monitor machine and *passive* transmitter,
// and a wizard that pulls fresh status only when a request arrives.
// This is the configuration the thesis aims at GRID environments,
// where server groups are sparse and standing status traffic would be
// wasted.
//
// The example stands up two complete monitor sites (probes + system
// monitor + passive transmitter) and one wizard site (receiver +
// wizard), all as real sockets in one process, then issues requests
// and shows that (a) no status moves before the first request and
// (b) each request sees up-to-the-moment load.
//
//	go run ./examples/gridmode
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"smartsock"
	"smartsock/internal/monitor"
	"smartsock/internal/probe"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
	"smartsock/internal/transport"
	"smartsock/internal/wizard"

	"smartsock/internal/core"
	"smartsock/internal/workload"
)

// site is one server group's monitor machine.
type site struct {
	name    string
	db      *store.DB
	txAddr  string
	sources map[string]*sysinfo.Synthetic
}

// startSite boots probes, a system monitor and a passive transmitter
// for one group of servers.
func startSite(ctx context.Context, name string, servers map[string]float64) (*site, error) {
	s := &site{name: name, db: store.New(), sources: map[string]*sysinfo.Synthetic{}}
	mon, err := monitor.New(monitor.Config{Addr: "127.0.0.1:0", DB: s.db, Interval: 50 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	go mon.Run(ctx)
	for server, bogomips := range servers {
		src := sysinfo.NewSynthetic(sysinfo.Idle(server, bogomips, 256))
		s.sources[server] = src
		p, err := probe.New(probe.Config{Source: src, Monitor: mon.Addr(), Interval: 50 * time.Millisecond})
		if err != nil {
			return nil, err
		}
		go p.Run(ctx)
	}
	tx, err := transport.NewTransmitter(s.db, nil)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go tx.ServePassive(ctx, ln)
	s.txAddr = ln.Addr().String()
	return s, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Two server groups in "different cities".
	siteA, err := startSite(ctx, "site-A", map[string]float64{
		"a-fast": 4771, "a-slow": 1730,
	})
	if err != nil {
		return err
	}
	siteB, err := startSite(ctx, "site-B", map[string]float64{
		"b-fast": 4771, "b-mid": 3394,
	})
	if err != nil {
		return err
	}

	// Wizard site: receiver + wizard in distributed (pull) mode.
	wizDB := store.New()
	recv, err := transport.NewReceiver(wizDB, "127.0.0.1:0", nil)
	if err != nil {
		return err
	}
	transmitters := []string{siteA.txAddr, siteB.txAddr}
	sel, err := core.New(wizDB, core.Config{})
	if err != nil {
		return err
	}
	wz, err := wizard.New(wizard.Config{
		Addr:     "127.0.0.1:0",
		Selector: sel,
		Update: func(context.Context) error {
			return recv.PullFrom(transmitters, 2*time.Second)
		},
	})
	if err != nil {
		return err
	}
	go wz.Run(ctx)

	// Let the probes populate the *site* databases.
	deadline := time.Now().Add(10 * time.Second)
	for (siteA.db.SysLen() < 2 || siteB.db.SysLen() < 2) && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("site databases: A=%d servers, B=%d servers\n", siteA.db.SysLen(), siteB.db.SysLen())
	fmt.Printf("wizard database before any request: %d servers (distributed mode is silent when idle)\n",
		wizDB.SysLen())

	client, err := smartsock.NewClient(wz.Addr(), nil)
	if err != nil {
		return err
	}
	servers, err := client.RequestServers(ctx, "host_cpu_bogomips > 4000", 2)
	if err != nil {
		return err
	}
	fmt.Printf("request 1 (bogomips > 4000): %v   [pull merged both sites: %d servers]\n",
		servers, wizDB.SysLen())

	// Load hits a-fast; the very next request must avoid it, because
	// distributed mode pulls fresh status per request.
	release := workload.Apply(siteA.sources["a-fast"], workload.SuperPI())
	defer release()
	time.Sleep(150 * time.Millisecond) // a few probe intervals at site A

	servers, err = client.RequestServers(ctx, `
host_cpu_bogomips > 4000
host_system_load1 < 0.5
`, 1)
	if err != nil {
		return err
	}
	fmt.Printf("request 2 (after loading a-fast): %v   [fresh pull saw the new load]\n", servers)
	if len(servers) == 1 && servers[0] == "b-fast" {
		fmt.Println("OK: the wizard routed around the newly busy server without any standing traffic")
	}
	return nil
}
