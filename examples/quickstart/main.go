// Quickstart: the Fig 1.4 walkthrough, end to end, in one process.
//
// Twelve servers sit in four networks with one-way delays of 100, 5,
// 10 and 15 ms. The user wants 3 servers with at least 100 MB of
// free memory, CPU usage under 10% and network delay under 20 ms,
// and blacklists hacker.some.net. The wizard should answer B2, C1
// and D1.
//
// Everything — probes, monitors, transmitter, receiver, wizard —
// runs in this process over real loopback sockets; only the server
// status is synthetic. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"smartsock"
	"smartsock/internal/simnet"
	"smartsock/internal/status"
	"smartsock/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Twelve servers in four networks. B1 is busy, B3 and D2/D3 are
	// short on memory, C2 is the blacklisted host.
	type host struct {
		name    string
		network string
		cpuBusy float64
		memMB   uint64
	}
	hosts := []host{
		{"a1", "netA", 0.02, 512}, {"a2", "netA", 0.02, 512}, {"a3", "netA", 0.02, 512},
		{"b1", "netB", 0.20, 512}, {"b2", "netB", 0.02, 512}, {"b3", "netB", 0.02, 64},
		{"c1", "netC", 0.02, 512}, {"hacker.some.net", "netC", 0.02, 512}, {"c3", "netC", 0.50, 512},
		{"d1", "netD", 0.02, 512}, {"d2", "netD", 0.02, 80}, {"d3", "netD", 0.02, 64},
	}
	var machines []testbed.Machine
	for _, h := range hosts {
		machines = append(machines, testbed.Machine{
			Name: h.name, Bogomips: 3000, RAMMB: h.memMB, Group: h.network, Speed: 1,
		})
	}

	// Network delays per Fig 1.4.
	paths := map[string]*simnet.Path{}
	for network, delay := range map[string]time.Duration{
		"netA": 100 * time.Millisecond,
		"netB": 5 * time.Millisecond,
		"netC": 10 * time.Millisecond,
		"netD": 15 * time.Millisecond,
	} {
		p, err := simnet.New(simnet.Config{
			Name: "client-" + network, MTU: 1500, SpeedInit: testbed.SpeedInit,
			Jitter: 0.01, Seed: 7,
			Hops: []simnet.Hop{{Capacity: 100e6, PropDelay: delay}},
		})
		if err != nil {
			return err
		}
		paths[network] = p
	}

	cluster, err := testbed.Boot(testbed.Options{
		Machines:   machines,
		GroupPaths: paths,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Make the busy hosts actually look busy to the probes.
	for _, h := range hosts {
		if h.cpuBusy > 0.05 {
			busy := h.cpuBusy
			cluster.Sources[h.name].Update(func(s *status.ServerStatus) {
				s.CPUUser = busy
				s.CPUIdle = 1 - busy - s.CPUSystem
			})
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	fmt.Println("waiting for probes, monitors and the wizard to settle...")
	if err := cluster.WaitSettled(ctx, len(machines)); err != nil {
		return err
	}

	// The user's requirement, in the meta language of §4.3.
	requirement := `# Fig 1.4: three well-provisioned, nearby servers
host_memory_free >= 100
host_cpu_user + host_cpu_system + host_cpu_nice < 0.10
monitor_network_delay < 20
user_denied_host1 = hacker.some.net
`
	if err := smartsock.CheckRequirement(requirement); err != nil {
		return err
	}
	client, err := smartsock.NewClient(cluster.WizardAddr(), nil)
	if err != nil {
		return err
	}
	servers, err := client.RequestServers(ctx, requirement, 3)
	if err != nil {
		return err
	}
	fmt.Println("wizard selected:")
	for _, s := range servers {
		fmt.Println("  -", s)
	}
	fmt.Println("(Fig 1.4 expects b2, c1, d1: network A is too far, b1/c3 are busy,")
	fmt.Println(" b3/d2/d3 lack memory, and hacker.some.net is blacklisted)")

	return nil
}
