// Netprobe: the §3.3.2 bandwidth measurement study as a live demo.
//
// Part 1 runs the one-way UDP stream estimator against a *real* UDP
// echo server on loopback — the same code path a production network
// monitor uses (raw-ICMP-free).
//
// Part 2 reruns the thesis's probe-size comparison on the simulated
// 100 Mbps campus path: probe pairs below the interface MTU
// under-estimate badly (the Speed_init effect of Eq. 3.7); the
// 1600/2900 pair recommended by the thesis lands near the truth;
// pipechar and pathload baselines bracket it.
//
//	go run ./examples/netprobe
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"smartsock/internal/bwest"
	"smartsock/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Part 1: live probing over loopback UDP ---
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	echo, err := bwest.NewEchoServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	go echo.Run(ctx)
	prober, err := bwest.NewUDPProber(echo.Addr(), time.Second)
	if err != nil {
		return err
	}
	defer prober.Close()

	fmt.Println("live loopback RTTs (UDP echo):")
	for _, size := range []int{64, 512, 1472, 2900} {
		rtt := prober.ProbeRTT(size)
		fmt.Printf("  %5d B payload: %v\n", size, rtt.Round(time.Microsecond))
	}

	// --- Part 2: the Table 3.3 comparison on the simulated path ---
	path, err := testbed.CampusPath(1500, 42)
	if err != nil {
		return err
	}
	fmt.Printf("\nsimulated sagit→suna path: true available bandwidth %.1f Mbps\n",
		path.EffectiveBandwidth()/1e6)

	for _, g := range []struct {
		s1, s2 int
		label  string
	}{
		{100, 500, "both below MTU (Speed_init bites)"},
		{2000, 6000, "above MTU, unequal fragment counts"},
		{1600, 2900, "thesis-optimal pair"},
	} {
		st, err := bwest.Estimate(path, bwest.StreamConfig{S1: g.s1, S2: g.s2, Runs: 5})
		if err != nil {
			return err
		}
		fmt.Printf("  UDP stream %4d~%4d B: %6.2f Mbps   (%s)\n",
			g.s1, g.s2, st.Avg/1e6, g.label)
	}
	pc, err := bwest.Pipechar{}.Estimate(path)
	if err != nil {
		return err
	}
	fmt.Printf("  pipechar  (packet pair): %6.2f Mbps   (bottleneck capacity)\n", pc/1e6)
	lo, hi, err := bwest.Pathload{}.Estimate(path)
	if err != nil {
		return err
	}
	fmt.Printf("  pathload  (SLoPS):       %5.1f~%.1f Mbps\n", lo/1e6, hi/1e6)

	// The MTU knee, detected blind.
	pts := bwest.RTTSweep(path, 6000, 20)
	fmt.Printf("\nRTT sweep knee detected at %d bytes (interface MTU 1500)\n", bwest.DetectMTU(pts))
	return nil
}
