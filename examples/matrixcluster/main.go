// Matrixcluster: the §5.3.1 workload as a user would run it — a
// distributed matrix multiplication whose workers are picked by the
// wizard from live status reports.
//
// The example boots the full Table 5.1 testbed in-process, puts a
// SuperPI-class workload on three machines, then multiplies the same
// matrices twice: once on a fixed "unlucky" server set that includes
// the busy machines, once on wizard-selected servers. The smart run
// finishes measurably faster and the result is verified against a
// local multiply.
//
//	go run ./examples/matrixcluster
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"smartsock"
	"smartsock/internal/matrix"
	"smartsock/internal/testbed"
	"smartsock/internal/workload"
)

const (
	matrixN   = 300
	tile      = 60
	opCost    = 30 * time.Millisecond // modeled ms per 1e6 multiply-adds
	nWorkers  = 4
	busyCount = 3
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := testbed.Boot(testbed.Options{})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// SuperPI on three of the P4 1.6–1.8 machines.
	busy := []string{"helene", "telesto", "mimas"}
	for _, host := range busy {
		release := workload.Apply(cluster.Sources[host], workload.SuperPI())
		defer release()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(ctx, len(cluster.Machines)); err != nil {
		return err
	}

	// One matrix worker per machine, each slowed to its Fig 5.2 speed;
	// the busy ones also lose half their CPU to SuperPI.
	busySet := map[string]bool{}
	for _, h := range busy {
		busySet[h] = true
	}
	addrs := map[string]string{}
	for name, m := range cluster.Machines {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		w := &matrix.Worker{Name: name, SpeedFactor: m.Speed / 1.3, OpCost: opCost}
		if busySet[name] {
			w.LoadFactor = func() float64 { return 0.5 }
		}
		go w.Serve(ctx, ln)
		addrs[name] = ln.Addr().String()
	}

	a, err := matrix.NewRandom(matrixN, matrixN, 1)
	if err != nil {
		return err
	}
	b, err := matrix.NewRandom(matrixN, matrixN, 2)
	if err != nil {
		return err
	}
	want, err := matrix.MultiplyLocal(a, b)
	if err != nil {
		return err
	}

	multiply := func(names []string) (time.Duration, error) {
		var conns []net.Conn
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for _, n := range names {
			conn, err := net.Dial("tcp", addrs[n])
			if err != nil {
				return 0, err
			}
			conns = append(conns, conn)
		}
		start := time.Now()
		c, err := matrix.Distribute(ctx, a, b, tile, conns)
		if err != nil {
			return 0, err
		}
		if !c.Equal(want, 1e-9) {
			return 0, fmt.Errorf("distributed result differs from local multiply")
		}
		return time.Since(start), nil
	}

	// Unlucky draw: two busy machines in the set.
	unlucky := []string{"helene", "telesto", "calypso", "phoebe"}
	unluckyTime, err := multiply(unlucky)
	if err != nil {
		return err
	}
	fmt.Printf("fixed set   %v: %v\n", unlucky, unluckyTime.Round(time.Millisecond))

	// Smart selection: fast, unloaded machines only.
	client, err := smartsock.NewClient(cluster.WizardAddr(), nil)
	if err != nil {
		return err
	}
	smartSet, err := client.RequestServers(ctx, `
host_cpu_free > 0.9
host_memory_free > 5
host_system_load1 < 0.5
`, nWorkers)
	if err != nil {
		return err
	}
	smartTime, err := multiply(smartSet)
	if err != nil {
		return err
	}
	fmt.Printf("smart set   %v: %v\n", smartSet, smartTime.Round(time.Millisecond))
	fmt.Printf("improvement: %.1f%% (result verified against local multiply)\n",
		(1-smartTime.Seconds()/unluckyTime.Seconds())*100)
	return nil
}
