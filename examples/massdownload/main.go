// Massdownload: the §5.3.2 workload — fetch one large object from
// several file servers in parallel, letting the wizard pick servers
// on fast links.
//
// Two server groups sit behind shaped uplinks (the rshaper stand-in):
// group-1 at 6.72 Mbps-equivalent, group-2 at 1.33. The network
// monitor measures both paths; the requirement
// "monitor_network_bw > 6" steers the download to the fast group.
//
//	go run ./examples/massdownload
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"smartsock"
	"smartsock/internal/massd"
	"smartsock/internal/shaper"
	"smartsock/internal/simnet"
	"smartsock/internal/testbed"
)

const (
	fastMbps = 6.72
	slowMbps = 1.33
	// 1 paper-Mbps of rshaper setting = 32 KiB/s of real loopback
	// transfer, so the demo finishes in seconds.
	bwScale = 32 * 1024
	totalKB = 192
	blockKB = 16
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	groups := map[string]float64{"group-1": fastMbps, "group-2": slowMbps}

	// Paths the network monitor probes, pinned to the group rates.
	paths := map[string]*simnet.Path{}
	for group, mbps := range groups {
		p, err := testbed.GroupPath(group, mbps, 11)
		if err != nil {
			return err
		}
		paths[group] = p
	}

	// The six file-server machines of the thesis's massd experiments.
	var machines []testbed.Machine
	for _, name := range []string{"mimas", "telesto", "lhost", "dione", "titan-x", "pandora-x"} {
		m, _ := testbed.MachineByName(name)
		machines = append(machines, m)
	}
	cluster, err := testbed.Boot(testbed.Options{Machines: machines, GroupPaths: paths})
	if err != nil {
		return err
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fmt.Println("probing group bandwidths...")
	if err := cluster.WaitSettled(ctx, len(machines)); err != nil {
		return err
	}
	for _, r := range cluster.WizardDB.Net() {
		fmt.Printf("  %s → %s: %.2f Mbps, %v one-way\n",
			r.Metric.From, r.Metric.To, r.Metric.Bandwidth/1e6, r.Metric.Delay.Round(10*time.Microsecond))
	}

	// Start one shaped file server per machine.
	addrs := map[string]string{}
	for name, m := range cluster.Machines {
		raw, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		shaped, err := shaper.NewListener(raw, groups[m.Group]*bwScale)
		if err != nil {
			return err
		}
		srv := &massd.Server{}
		go srv.Serve(ctx, shaped)
		addrs[name] = raw.Addr().String()
	}

	download := func(names []string) (float64, error) {
		var conns []net.Conn
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for _, n := range names {
			conn, err := net.Dial("tcp", addrs[n])
			if err != nil {
				return 0, err
			}
			conns = append(conns, conn)
		}
		stats, err := massd.Download(ctx, conns, totalKB*1024, blockKB*1024)
		if err != nil {
			return 0, err
		}
		return stats.ThroughputKBps(), nil
	}

	client, err := smartsock.NewClient(cluster.WizardAddr(), nil)
	if err != nil {
		return err
	}
	smartSet, err := client.RequestServers(ctx, "monitor_network_bw > 6", 2)
	if err != nil {
		return err
	}
	naive := []string{"dione", "titan-x"} // the slow group

	naiveKBps, err := download(naive)
	if err != nil {
		return err
	}
	smartKBps, err := download(smartSet)
	if err != nil {
		return err
	}
	fmt.Printf("naive set %v: %.0f KB/s\n", naive, naiveKBps)
	fmt.Printf("smart set %v: %.0f KB/s (%.1fx)\n", smartSet, smartKBps, smartKBps/naiveKBps)
	return nil
}
