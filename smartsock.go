// Package smartsock is the client library of the Smart TCP socket
// system (§3.6.2): the public API applications use to turn a server
// requirement — written in the meta language of §4.3 — into a set of
// connected TCP sockets, selected by the wizard according to live
// server status.
//
// A minimal use looks like:
//
//	c, err := smartsock.NewClient("wizard.lab:1120", nil)
//	...
//	set, err := c.Connect(ctx, `
//	    host_cpu_free >= 0.9
//	    host_memory_free > 100
//	`, 3)
//	...
//	defer set.Close()
//	for _, conn := range set.Conns() { ... }
//
// The library sends the requirement to the wizard over UDP with a
// random sequence number, matches the reply against it, retries lost
// datagrams, and dials the returned servers. Requirements may also be
// loaded from files with LoadRequirement, and validated locally with
// CheckRequirement before any network traffic happens.
package smartsock

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"os"

	"time"

	"smartsock/internal/proto"
	"smartsock/internal/reqlang"
	"smartsock/internal/retry"
)

// Option bits modify wizard behaviour.
type Option = proto.Option

// Option values. See the proto package for semantics.
const (
	// OptPartialOK accepts fewer servers than requested when the pool
	// cannot satisfy the full count.
	OptPartialOK = proto.OptPartialOK
	// OptRankByExpr ranks qualified servers by the requirement's last
	// non-logical expression, highest first (the Chapter 6 "3 servers
	// with largest memory" extension).
	OptRankByExpr = proto.OptRankByExpr
	// OptTemplate treats the requirement text as the name of a
	// template predefined on the wizard.
	OptTemplate = proto.OptTemplate
)

// MaxServers is the most servers one request can return (§3.6.1).
const MaxServers = proto.MaxServers

// ClientConfig tunes a Client. The zero value is usable.
type ClientConfig struct {
	// Timeout bounds one request/reply exchange. Default 2 s.
	Timeout time.Duration
	// Retries resends a request whose reply was lost. Default 2.
	Retries int
	// DialTimeout bounds each server connection attempt. Default 5 s.
	DialTimeout time.Duration
	// Dial opens the client's sockets — the wizard's UDP socket and
	// each server's TCP connection. Nil means the net package dialers.
	// Chaos tests inject lossy wrappers here.
	Dial func(network, addr string) (net.Conn, error)
}

// Client talks to one wizard.
type Client struct {
	wizard string
	cfg    ClientConfig
}

// NewClient creates a client for the wizard at addr (host:port). A
// nil config selects defaults.
func NewClient(addr string, cfg *ClientConfig) (*Client, error) {
	if addr == "" {
		return nil, fmt.Errorf("smartsock: empty wizard address")
	}
	c := &Client{wizard: addr}
	if cfg != nil {
		c.cfg = *cfg
	}
	if c.cfg.Timeout <= 0 {
		c.cfg.Timeout = 2 * time.Second
	}
	if c.cfg.Retries < 0 {
		c.cfg.Retries = 0
	} else if c.cfg.Retries == 0 {
		c.cfg.Retries = 2
	}
	if c.cfg.DialTimeout <= 0 {
		c.cfg.DialTimeout = 5 * time.Second
	}
	return c, nil
}

// CheckRequirement parses a requirement without contacting the
// wizard, returning syntax errors with line positions. Use it to
// validate user-edited requirement files early.
func CheckRequirement(text string) error {
	_, err := reqlang.Parse(text)
	return err
}

// LoadRequirement reads a requirement file (the format of §3.6.2)
// and validates its syntax.
func LoadRequirement(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("smartsock: %w", err)
	}
	text := string(data)
	if err := CheckRequirement(text); err != nil {
		return "", err
	}
	return text, nil
}

// RequestServers asks the wizard for n servers matching the
// requirement and returns their addresses, best first. It does not
// connect to them; see Connect.
func (c *Client) RequestServers(ctx context.Context, requirement string, n int, opts ...Option) ([]string, error) {
	if n <= 0 {
		return nil, fmt.Errorf("smartsock: requested %d servers", n)
	}
	if n > MaxServers {
		return nil, fmt.Errorf("smartsock: %d exceeds the per-request limit of %d servers", n, MaxServers)
	}
	var opt Option
	for _, o := range opts {
		opt |= o
	}
	req := &proto.Request{
		Seq:       randomSeq(),
		ServerNum: uint16(n),
		Option:    opt,
		Detail:    requirement,
	}
	reply, err := c.exchange(ctx, req)
	if err != nil {
		return nil, err
	}
	if reply.Err != "" {
		return nil, fmt.Errorf("smartsock: wizard: %s", reply.Err)
	}
	return reply.Servers, nil
}

// exchange performs the UDP request/reply with sequence matching and
// retries (§3.6.2 steps 2–3). Resends are spaced by a bounded,
// jittered backoff so a fleet of clients retrying a lost wizard does
// not resynchronise into request storms.
func (c *Client) exchange(ctx context.Context, req *proto.Request) (*proto.Reply, error) {
	conn, err := c.dial("udp", c.wizard)
	if err != nil {
		return nil, fmt.Errorf("smartsock: dial wizard: %w", err)
	}
	defer conn.Close()
	msg := proto.MarshalRequest(req)
	buf := make([]byte, 64*1024)
	bo := &retry.Backoff{Base: 50 * time.Millisecond, Max: c.cfg.Timeout}
	var lastErr error
	var floor time.Duration // retry-after hint from an overloaded reply
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(bo.NextAtLeast(floor))
			floor = 0
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if _, err := conn.Write(msg); err != nil {
			return nil, fmt.Errorf("smartsock: send request: %w", err)
		}
		deadline := time.Now().Add(c.cfg.Timeout)
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		for {
			if err := conn.SetReadDeadline(deadline); err != nil {
				return nil, fmt.Errorf("smartsock: arm reply deadline: %w", err)
			}
			n, err := conn.Read(buf)
			if err != nil {
				lastErr = fmt.Errorf("smartsock: wizard did not answer: %w", err)
				break // resend
			}
			reply, err := proto.UnmarshalReply(buf[:n])
			if err != nil {
				lastErr = err
				continue // garbage datagram; keep listening
			}
			if reply.Seq != req.Seq {
				continue // reply to a different request (§3.6.2 step 3)
			}
			if after, ok := proto.RetryAfter(reply.Err); ok && attempt < c.cfg.Retries {
				// The wizard shed this request; wait at least the hinted
				// interval before the resend so the whole retrying fleet
				// backs off past the overload episode.
				lastErr = fmt.Errorf("smartsock: wizard: %s", reply.Err)
				floor = after
				break // resend
			}
			return reply, nil
		}
	}
	return nil, lastErr
}

// SocketSet is the bundle of connected sockets Connect returns — the
// "list of sockets that will participate in a single computation
// task" of Fig 1.2.
type SocketSet struct {
	conns []net.Conn
	addrs []string
	dial  func(ctx context.Context, addr string) (net.Conn, error)
}

// Conns returns the live connections, in selection order.
func (s *SocketSet) Conns() []net.Conn { return s.conns }

// Addrs returns the server addresses, parallel to Conns.
func (s *SocketSet) Addrs() []string { return s.addrs }

// Len reports the number of sockets in the set.
func (s *SocketSet) Len() int { return len(s.conns) }

// Close closes every socket in the set, returning the first error.
func (s *SocketSet) Close() error {
	var first error
	for _, c := range s.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Redial replaces the i-th socket with a fresh connection to the same
// server — the rsocks-style suspend/resume hook of Chapter 6. The old
// socket is closed; the caller re-issues whatever work was in flight.
func (s *SocketSet) Redial(ctx context.Context, i int) error {
	if i < 0 || i >= len(s.conns) {
		return fmt.Errorf("smartsock: no socket %d in set of %d", i, len(s.conns))
	}
	// The old socket is being replaced; only the redial result matters.
	_ = s.conns[i].Close()
	conn, err := s.dial(ctx, s.addrs[i])
	if err != nil {
		return fmt.Errorf("smartsock: redial %s: %w", s.addrs[i], err)
	}
	s.conns[i] = conn
	return nil
}

// Connect asks the wizard for n servers and returns a SocketSet with
// a TCP connection to each (§3.6.2 step 4). Servers that fail to
// accept are skipped; unless OptPartialOK is set, any shortfall after
// dialing is an error and already-opened sockets are closed.
func (c *Client) Connect(ctx context.Context, requirement string, n int, opts ...Option) (*SocketSet, error) {
	var opt Option
	for _, o := range opts {
		opt |= o
	}
	// Over-ask slightly so a dial failure can be absorbed when the
	// pool has spares.
	ask := n + 2
	if ask > MaxServers {
		ask = MaxServers
	}
	if ask < n {
		ask = n
	}
	addrs, err := c.RequestServers(ctx, requirement, ask, opt|OptPartialOK)
	if err != nil {
		return nil, err
	}
	set := &SocketSet{dial: c.dialServer}
	var failed []string
	dialRound := func(addrs []string) {
		for _, addr := range addrs {
			if set.Len() == n {
				return
			}
			if containsAddr(set.addrs, addr) || containsAddr(failed, addr) {
				continue
			}
			conn, err := c.dialServer(ctx, addr)
			if err != nil {
				failed = append(failed, addr)
				continue // try the next candidate
			}
			set.conns = append(set.conns, conn)
			set.addrs = append(set.addrs, addr)
		}
	}
	dialRound(addrs)
	if set.Len() < n && len(failed) > 0 && ctx.Err() == nil {
		// Second selection round (§3.6.2's recovery path): tell the
		// wizard which servers refused connections via the user-side
		// denied-host list and ask again. The wizard's view lags real
		// liveness by up to a status epoch; this closes the gap.
		if addrs2, err := c.RequestServers(ctx, denyHosts(requirement, failed), ask, opt|OptPartialOK); err == nil {
			dialRound(addrs2)
		}
	}
	if set.Len() < n && opt&OptPartialOK == 0 {
		set.Close()
		return nil, fmt.Errorf("smartsock: connected to %d of %d requested servers", set.Len(), n)
	}
	if set.Len() == 0 {
		return nil, fmt.Errorf("smartsock: no server could be contacted")
	}
	return set, nil
}

// denyHosts appends user_denied_host lines for up to 5 failed servers
// (the user-side list holds five slots, Appendix B.2).
func denyHosts(requirement string, failed []string) string {
	out := requirement
	for i, addr := range failed {
		if i == 5 {
			break
		}
		out += fmt.Sprintf("\nuser_denied_host%d = %q", i+1, addr)
	}
	return out
}

func containsAddr(list []string, addr string) bool {
	for _, a := range list {
		if a == addr {
			return true
		}
	}
	return false
}

func (c *Client) dialServer(ctx context.Context, addr string) (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial("tcp", addr)
	}
	d := net.Dialer{Timeout: c.cfg.DialTimeout}
	return d.DialContext(ctx, "tcp", addr)
}

// dial opens the wizard socket through the configured hook.
func (c *Client) dial(network, addr string) (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial(network, addr)
	}
	return net.Dial(network, addr)
}

// randomSeq draws the request sequence number from crypto/rand so
// concurrent clients on one machine cannot collide (§3.6.1).
func randomSeq() uint32 {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to time-based; collisions remain unlikely.
		return uint32(time.Now().UnixNano())
	}
	return binary.BigEndian.Uint32(b[:])
}

// ServerVariables lists the server-side requirement variables this
// deployment understands, for documentation and tooling.
func ServerVariables() []string {
	return []string{
		"host_system_load1", "host_system_load5", "host_system_load15",
		"host_cpu_user", "host_cpu_nice", "host_cpu_system", "host_cpu_idle",
		"host_cpu_free", "host_cpu_bogomips",
		"host_memory_total", "host_memory_used", "host_memory_free",
		"host_memory_total_bytes", "host_memory_used_bytes", "host_memory_free_bytes",
		"host_disk_allreq", "host_disk_rreq", "host_disk_rblocks",
		"host_disk_wreq", "host_disk_wblocks",
		"host_network_rbytesps", "host_network_rpacketsps",
		"host_network_tbytesps", "host_network_tpacketsps",
		"monitor_network_delay", "monitor_network_bw",
		"host_security_level",
	}
}

// UserVariables lists the user-side variables (Appendix B.2).
func UserVariables() []string {
	out := make([]string, 0, 10)
	for i := 1; i <= 5; i++ {
		out = append(out, fmt.Sprintf("user_denied_host%d", i))
	}
	for i := 1; i <= 5; i++ {
		out = append(out, fmt.Sprintf("user_preferred_host%d", i))
	}
	return out
}

// Functions lists the built-in math functions (Appendix B.4).
func Functions() []string {
	fns := reqlang.Builtins()
	// Sorted for stable docs.
	for i := 1; i < len(fns); i++ {
		for j := i; j > 0 && fns[j] < fns[j-1]; j-- {
			fns[j], fns[j-1] = fns[j-1], fns[j]
		}
	}
	return fns
}
