package smartsock_test

// Chaos end-to-end: the full in-process testbed — probes, monitors,
// transmitter, receiver, wizard — runs over real loopback sockets
// while a seeded fault injector drops 20% of the probe datagrams and
// one virtual host crashes outright. The selection pipeline must shed
// the dead server within two status epochs and still hand the client
// a working connection to a survivor.
//
// Determinism: the injector's fate schedule is fixed by CHAOS_SEED
// (default 42), so a failure reproduces with the same seed. The
// assertions are additionally loss-rate-robust — they never require a
// specific datagram to survive, only that the aggregate behaves.

import (
	"context"
	"net"
	"testing"
	"time"

	"smartsock"
	"smartsock/internal/chaos"
	"smartsock/internal/testbed"
)

// echoServer runs a TCP echo accept loop and returns its address.
func echoServer(t *testing.T) (addr string, close func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					if err := c.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
						return
					}
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String(), func() { _ = ln.Close() }
}

func TestChaosSelectionSurvivesLossAndCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	seed := chaos.SeedFromEnv(42)
	const interval = 50 * time.Millisecond

	// Three virtual hosts whose names are the dialable addresses of
	// real echo listeners, so wizard replies can be connected to.
	var machines []testbed.Machine
	var closers []func()
	for i := 0; i < 3; i++ {
		addr, closeLn := echoServer(t)
		closers = append(closers, closeLn)
		machines = append(machines, testbed.Machine{
			Name: addr, CPU: "sim", Bogomips: 2000, RAMMB: 256,
			Speed: 1.0, Group: "lab",
		})
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()

	// 20% send-side loss on every probe→monitor datagram.
	probeFaults := chaos.New(chaos.Config{Seed: seed, DropRate: 0.2})
	cluster, err := testbed.Boot(testbed.Options{
		Machines:        machines,
		ProbeInterval:   interval,
		MissedIntervals: 2, // evict a silent server after 2 status epochs
		ExpireAll:       true,
		MaxStatusAge:    4 * interval,
		ProbeFaults:     probeFaults,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	settleCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(settleCtx, len(machines)); err != nil {
		t.Fatalf("pipeline never settled under 20%% loss: %v", err)
	}

	// Crash host 0: its probe stops and its listener closes, like a
	// machine losing power without deregistering.
	dead := machines[0].Name
	if err := cluster.CrashHost(dead); err != nil {
		t.Fatal(err)
	}
	closers[0]()

	// The client's wizard exchange runs over its own lossy link — the
	// "flapping wizard" leg — so request datagrams are dropped too and
	// the retry/backoff path is exercised.
	clientFaults := chaos.New(chaos.Config{Seed: seed + 1, DropRate: 0.2})
	client, err := smartsock.NewClient(cluster.WizardAddr(), &smartsock.ClientConfig{
		Timeout: 500 * time.Millisecond,
		Retries: 4,
		Dial: func(network, addr string) (net.Conn, error) {
			conn, err := net.Dial(network, addr)
			if err != nil {
				return nil, err
			}
			if network == "udp" {
				return clientFaults.WrapConn(conn), nil
			}
			return conn, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Within two status epochs (plus sweep and push latency) the dead
	// server must leave the candidate list. Poll the real wizard until
	// it answers without the corpse; the deadline is generous because
	// the bound under test is logical (MissedIntervals=2), not wall
	// time.
	const requirement = "host_memory_total > 0\n"
	deadline := time.Now().Add(15 * time.Second)
	var servers []string
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		servers, err = client.RequestServers(ctx, requirement, 3, smartsock.OptPartialOK)
		cancel()
		if err == nil && len(servers) > 0 && !containsString(servers, dead) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead server %s still selectable; last reply %v, err %v", dead, servers, err)
		}
		time.Sleep(interval)
	}
	for _, s := range servers {
		if s == dead {
			t.Fatalf("wizard still offers crashed host %s in %v", dead, servers)
		}
	}

	// End to end: Connect must hand back a live socket that echoes.
	ctx, cancelConnect := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelConnect()
	set, err := client.Connect(ctx, requirement, 1, smartsock.OptPartialOK)
	if err != nil {
		t.Fatalf("connect after crash: %v", err)
	}
	defer set.Close()
	if got := set.Addrs()[0]; got == dead {
		t.Fatalf("connected to the crashed host %s", got)
	}
	conn := set.Conns()[0]
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := conn.Read(buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo through selected server: %q, %v", buf, err)
	}

	if probeFaults.Dropped() == 0 {
		t.Error("fault injector never dropped a datagram; the chaos leg did not run")
	}
}

// TestChaosTransmitterLinkResetRecovers clamps the transmitter →
// receiver stream with reset faults and checks the centralized push
// loop re-establishes itself: the wizard database keeps refreshing.
func TestChaosTransmitterLinkResetRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	seed := chaos.SeedFromEnv(42)
	const interval = 50 * time.Millisecond
	txFaults := chaos.New(chaos.Config{Seed: seed})

	addr, closeLn := echoServer(t)
	defer closeLn()
	cluster, err := testbed.Boot(testbed.Options{
		Machines: []testbed.Machine{{
			Name: addr, CPU: "sim", Bogomips: 2000, RAMMB: 256, Speed: 1, Group: "lab",
		}},
		ProbeInterval: interval,
		TxFaults:      txFaults,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(ctx, 1); err != nil {
		t.Fatal(err)
	}

	// Sever the live push stream; the transmitter must redial (with
	// backoff) and resume refreshing the wizard's replica.
	if n := txFaults.ResetAllStreams(); n == 0 {
		t.Fatal("no transmitter stream was wrapped")
	}
	time.Sleep(2 * interval)
	rec, ok := cluster.WizardDB.GetSys(addr)
	if !ok {
		t.Fatal("server record vanished from the wizard database")
	}
	before := rec.UpdatedAt
	deadline := time.Now().Add(10 * time.Second)
	for {
		if rec, ok := cluster.WizardDB.GetSys(addr); ok && rec.UpdatedAt.After(before) {
			return // the push loop recovered
		}
		if time.Now().After(deadline) {
			t.Fatal("wizard database stopped refreshing after a stream reset")
		}
		time.Sleep(interval)
	}
}

// TestChaosStreamResetMidDeltaResyncs cuts the push stream while it
// is carrying delta traffic and checks the delta protocol's recovery
// story end to end: the transmitter redials and re-anchors the
// receiver with a full snapshot, delta flow resumes, and a host that
// dies afterwards still disappears from the wizard's replica via a
// tombstone delta — proof the resynced stream carries deletions, not
// just refreshes.
func TestChaosStreamResetMidDeltaResyncs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	seed := chaos.SeedFromEnv(42)
	const interval = 50 * time.Millisecond
	txFaults := chaos.New(chaos.Config{Seed: seed})

	var machines []testbed.Machine
	var closers []func()
	for i := 0; i < 3; i++ {
		addr, closeLn := echoServer(t)
		closers = append(closers, closeLn)
		machines = append(machines, testbed.Machine{
			Name: addr, CPU: "sim", Bogomips: 2000, RAMMB: 256, Speed: 1, Group: "lab",
		})
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	cluster, err := testbed.Boot(testbed.Options{
		Machines:        machines,
		ProbeInterval:   interval,
		MissedIntervals: 2,
		ExpireAll:       true,
		MaxStatusAge:    4 * interval,
		TxFaults:        txFaults,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(ctx, len(machines)); err != nil {
		t.Fatal(err)
	}

	// Probes re-report every interval, so once settled the stream
	// carries one refresh delta per epoch. Wait until the stream is
	// demonstrably in its delta regime before cutting it.
	deadline := time.Now().Add(10 * time.Second)
	for cluster.Tx.Deltas() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("push stream never entered the delta regime")
		}
		time.Sleep(interval)
	}

	// Cut the stream mid-delta. The transmitter must notice, redial
	// and open the new stream with a full snapshot (the resync), after
	// which the replica keeps refreshing.
	fullBefore, deltasBefore := cluster.Tx.Sent(), cluster.Tx.Deltas()
	if n := txFaults.ResetAllStreams(); n == 0 {
		t.Fatal("no transmitter stream was wrapped")
	}
	deadline = time.Now().Add(10 * time.Second)
	for cluster.Tx.Sent() == fullBefore {
		if time.Now().After(deadline) {
			t.Fatal("transmitter never re-anchored the stream with a full snapshot")
		}
		time.Sleep(interval)
	}
	deadline = time.Now().Add(10 * time.Second)
	for cluster.Tx.Deltas() <= deltasBefore {
		if time.Now().After(deadline) {
			t.Fatal("delta flow never resumed after the resync snapshot")
		}
		time.Sleep(interval)
	}

	// Kill a host on the resynced stream: its expiry tombstone must
	// ride a delta all the way into the wizard's replica.
	dead := machines[2].Name
	if err := cluster.CrashHost(dead); err != nil {
		t.Fatal(err)
	}
	closers[2]()
	deadline = time.Now().Add(15 * time.Second)
	for {
		if _, ok := cluster.WizardDB.GetSys(dead); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("crashed host %s never left the wizard replica via a tombstone delta", dead)
		}
		time.Sleep(interval)
	}
	// The survivors must be untouched by the deletion.
	for _, m := range machines[:2] {
		if _, ok := cluster.WizardDB.GetSys(m.Name); !ok {
			t.Fatalf("survivor %s vanished alongside the tombstoned host", m.Name)
		}
	}
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
